#include "obs/trace.h"

#include <algorithm>

namespace ntier::obs {

// ---- tail-based sampling -----------------------------------------------------

bool TraceCollector::episode_relevant(const TraceEvent& e, int node) {
  // The range keeps exactly what the causal-chain join consumes for the
  // episode's worker: lb_value freshness, the committed-queue deltas
  // (attempt / timeout / release) and retransmits, plus the request-less
  // node-level signals (pdflush, iowait, stalls, breaker flips) that form
  // the chain skeleton. Everything else a diagnosis needs per request —
  // service times, polling, hop breakdowns — rides with the marked (VLRT)
  // requests, which are kept end to end regardless of ranges.
  if (e.kind == EventKind::kLbValue) return e.worker == node;
  if (e.request == 0) return true;
  if (e.kind == EventKind::kSynRetransmit) return true;
  if (e.tier == Tier::kBalancer)
    return e.worker == node && (e.kind == EventKind::kGetEndpointAttempt ||
                                e.kind == EventKind::kGetEndpointTimeout ||
                                e.kind == EventKind::kEndpointRelease);
  return false;
}

void TraceCollector::mark_range(sim::SimTime t0, sim::SimTime t1, int node) {
  if (t1 < t0) return;
  // Coalesce with an overlapping/adjacent existing range for the same node so
  // the mark list stays as short as the episode list, not the window count.
  for (MarkRange& m : tail_marks_) {
    if (m.node != node) continue;
    if (t0 <= m.t1 && m.t0 <= t1) {
      m.t0 = std::min(m.t0, t0);
      m.t1 = std::max(m.t1, t1);
      return;
    }
  }
  tail_marks_.push_back(MarkRange{t0, t1, node});
}

bool TraceCollector::tail_keep(const TraceEvent& e) const {
  if (e.request == 0) {
    // Node-level signals are the chain skeleton and are low-volume — except
    // kLbValue, which fires per completion and is only kept inside marked
    // episode windows (the only place a freeze gap is diagnostically useful).
    if (e.kind != EventKind::kLbValue) return true;
  } else {
    if (config_.tail.head_every &&
        e.request % config_.tail.head_every == 0)
      return true;
    if (tail_marked_requests_.count(e.request)) return true;
  }
  for (const MarkRange& m : tail_marks_) {
    if (e.at < m.t0 || e.at > m.t1) continue;
    if (m.node < 0 || episode_relevant(e, m.node)) return true;
  }
  return false;
}

void TraceCollector::tail_evict(const TraceEvent& e) {
  ++tail_seen_;
  if (tail_keep(e)) {
    tail_kept_.push_back(e);
    ++tail_kept_count_;
  }
}

void TraceCollector::tail_push(const TraceEvent& e) {
  tail_buf_.push_back(e);
  const sim::SimTime watermark = e.at - config_.tail.horizon;
  while (!tail_buf_.empty() && tail_buf_.front().at < watermark) {
    tail_evict(tail_buf_.front());
    tail_buf_.pop_front();
  }
  // Ranges wholly behind the eviction watermark can never match again.
  if (!tail_marks_.empty() && !tail_buf_.empty()) {
    const sim::SimTime oldest = tail_buf_.front().at;
    tail_marks_.erase(
        std::remove_if(tail_marks_.begin(), tail_marks_.end(),
                       [oldest](const MarkRange& m) { return m.t1 < oldest; }),
        tail_marks_.end());
  }
}

void TraceCollector::finish_tail() {
  while (!tail_buf_.empty()) {
    tail_evict(tail_buf_.front());
    tail_buf_.pop_front();
  }
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kClientSend: return "client_send";
    case EventKind::kSynRetransmit: return "syn_retransmit";
    case EventKind::kClientDone: return "client_done";
    case EventKind::kAcceptEnqueue: return "accept_enqueue";
    case EventKind::kAcceptDrop: return "accept_drop";
    case EventKind::kWorkerPickup: return "worker_pickup";
    case EventKind::kGetEndpointAttempt: return "get_endpoint_attempt";
    case EventKind::kGetEndpointPoll: return "get_endpoint_poll";
    case EventKind::kGetEndpointTimeout: return "get_endpoint_timeout";
    case EventKind::kGetEndpointSkip: return "get_endpoint_skip";
    case EventKind::kEndpointAcquire: return "endpoint_acquire";
    case EventKind::kEndpointRelease: return "endpoint_release";
    case EventKind::kBackendQueue: return "backend_queue";
    case EventKind::kServiceStart: return "service_start";
    case EventKind::kServiceEnd: return "service_end";
    case EventKind::kPdflushStart: return "pdflush_start";
    case EventKind::kPdflushStop: return "pdflush_stop";
    case EventKind::kStallStart: return "stall_start";
    case EventKind::kStallStop: return "stall_stop";
    case EventKind::kBreakerState: return "breaker_state";
    case EventKind::kLbValue: return "lb_value";
    case EventKind::kIoWait: return "iowait";
    case EventKind::kProbeSent: return "probe_sent";
    case EventKind::kProbeReply: return "probe_reply";
    case EventKind::kProbeExpired: return "probe_expired";
    case EventKind::kAdmissionShed: return "admission_shed";
    case EventKind::kDeadlineExpired: return "deadline_expired";
    case EventKind::kLimitUpdate: return "limit_update";
    case EventKind::kKvQuorumRead: return "kv_quorum_read";
    case EventKind::kKvQuorumWrite: return "kv_quorum_write";
    case EventKind::kKvHandoffReplay: return "kv_handoff_replay";
    case EventKind::kKvReadRepair: return "kv_read_repair";
    case EventKind::kKvMigration: return "kv_migration";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheInvalidate: return "cache_invalidate";
    case EventKind::kCacheCoalesced: return "cache_coalesced";
    case EventKind::kRecoveryEpisode: return "recovery_episode";
    case EventKind::kRecoveryIntervention: return "recovery_intervention";
  }
  return "?";
}

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kClient: return "client";
    case Tier::kApache: return "apache";
    case Tier::kBalancer: return "balancer";
    case Tier::kTomcat: return "tomcat";
    case Tier::kMysql: return "mysql";
    case Tier::kKv: return "kv";
    case Tier::kCache: return "cache";
  }
  return "?";
}

}  // namespace ntier::obs
