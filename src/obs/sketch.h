#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ntier::obs {

/// Parameters of a DDSketch. Two sketches are mergeable iff their configs
/// are identical (same gamma, same bucket bound).
struct SketchConfig {
  /// Guaranteed relative error of every quantile estimate: a reported
  /// quantile q̂ satisfies |q̂ - q| <= relative_accuracy * q for the true
  /// sample quantile q.
  double relative_accuracy = 0.02;
  /// Hard bound on the number of log-spaced buckets. When exceeded, the
  /// lowest buckets are collapsed together, which preserves the accuracy
  /// guarantee for the upper quantiles (p50/p99/p99.9 — the ones the paper's
  /// latency analysis cares about).
  std::size_t max_buckets = 1024;
};

/// A DDSketch ("Distributed Distribution Sketch"): a mergeable quantile
/// sketch over positive values with a guaranteed *relative* error bound.
/// Values are mapped to log-spaced buckets i = ceil(log_gamma(v)) with
/// gamma = (1+a)/(1-a); a bucket's midpoint 2*gamma^i/(gamma+1) is within a
/// factor (1±a) of every value it absorbed, so any quantile read back is
/// within a of the true sample quantile — without retaining samples.
///
/// Buckets live in an ordered map, so iteration, serialisation and merge
/// results are byte-deterministic: merging the same multiset of sketches in
/// any order yields identical serialized bytes (merge is commutative and,
/// as long as the bucket bound is not hit mid-way, associative).
class DDSketch {
 public:
  explicit DDSketch(SketchConfig config = {});

  /// Record one sample. Values <= 0 land in a dedicated zero bucket
  /// (response times and queue depths are non-negative; exact zeros are
  /// common for empty windows).
  void record(double value);
  /// Record `n` identical samples at once.
  void record_n(double value, std::uint64_t n);

  /// Merge another sketch into this one. Requires identical configs.
  void merge(const DDSketch& other);

  /// Estimate the q-quantile (q in [0,1]) of everything recorded.
  /// Returns 0 when the sketch is empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  std::size_t num_buckets() const { return buckets_.size(); }
  const SketchConfig& config() const { return config_; }

  /// Deterministic ASCII serialisation: identical sketch state produces
  /// identical bytes on every run and worker count (the sweep-determinism
  /// invariant extends to sketches).
  std::string serialize() const;
  /// Inverse of serialize(). Returns nullopt on malformed input.
  static std::optional<DDSketch> deserialize(const std::string& bytes);

  bool operator==(const DDSketch& other) const;

  void clear();

 private:
  int index_of(double value) const;
  double value_of(int index) const;
  void collapse();

  SketchConfig config_;
  double gamma_ = 0;
  double inv_log_gamma_ = 0;
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace ntier::obs
