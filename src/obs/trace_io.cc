#include "obs/trace_io.h"

#include <array>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ntier::obs {

std::optional<TraceFormat> parse_trace_format(const std::string& s) {
  if (s == "jsonl") return TraceFormat::kJsonl;
  if (s == "chrome" || s == "perfetto") return TraceFormat::kChrome;
  return std::nullopt;
}

namespace {

// Shortest round-trip rendering (std::to_chars), so the emitted bytes are a
// pure function of the double's value.
void append_double(std::string& out, double v) {
  std::array<char, 32> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc()) {
    out += "0";
    return;
  }
  out.append(buf.data(), ptr);
}

void append_int(std::string& out, std::int64_t v) {
  std::array<char, 24> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  (void)ec;
  out.append(buf.data(), ptr);
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceCollector& trace) {
  std::string line;
  trace.for_each([&os, &line](const TraceEvent& e) {
    line.clear();
    line += "{\"t_ns\":";
    append_int(line, e.at.ns());
    line += ",\"kind\":\"";
    line += to_string(e.kind);
    line += "\",\"tier\":\"";
    line += to_string(e.tier);
    line += "\",\"node\":";
    append_int(line, e.node);
    line += ",\"worker\":";
    append_int(line, e.worker);
    line += ",\"req\":";
    append_int(line, static_cast<std::int64_t>(e.request));
    line += ",\"value\":";
    append_double(line, e.value);
    line += ",\"aux\":";
    append_int(line, e.aux);
    line += "}\n";
    os << line;
  });
}

namespace {

// Stable track ("tid") for one lane within a tier: one per server, plus one
// per (balancer, candidate-worker) pair so each get_endpoint lane is its own
// Perfetto row.
int lane_of(const TraceEvent& e) {
  const int node = e.node < 0 ? 0 : e.node;
  if (e.tier == Tier::kBalancer && e.worker >= 0)
    return 1 + node * 64 + e.worker;
  return 1 + node * 64;
}

std::string lane_name(const TraceEvent& e) {
  std::string name = to_string(e.tier);
  name += std::to_string((e.node < 0 ? 0 : e.node) + 1);
  if (e.tier == Tier::kBalancer && e.worker >= 0)
    name += "->tomcat" + std::to_string(e.worker + 1);
  return name;
}

}  // namespace

void write_chrome_json(std::ostream& os, const TraceCollector& trace) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&os, &first] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: name the tier "processes" and each server/worker lane.
  std::map<int, const char*> pids;
  std::map<std::pair<int, int>, std::string> lanes;
  trace.for_each([&pids, &lanes](const TraceEvent& e) {
    const int pid = static_cast<int>(e.tier) + 1;
    pids.emplace(pid, to_string(e.tier));
    lanes.emplace(std::make_pair(pid, lane_of(e)), lane_name(e));
  });
  for (const auto& [pid, name] : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
  }
  for (const auto& [key, name] : lanes) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"" << name
       << "\"}}";
  }

  char ts[32];
  trace.for_each([&](const TraceEvent& e) {
    const int pid = static_cast<int>(e.tier) + 1;
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.at.ns()) / 1e3);  // microseconds
    const char* name = to_string(e.kind);
    sep();
    switch (e.kind) {
      case EventKind::kPdflushStart:
      case EventKind::kStallStart:
        os << "{\"name\":\"" << name << "\",\"ph\":\"B\",\"ts\":" << ts
           << ",\"pid\":" << pid << ",\"tid\":" << lane_of(e) << "}";
        break;
      case EventKind::kPdflushStop:
      case EventKind::kStallStop:
        os << "{\"name\":\"" << name << "\",\"ph\":\"E\",\"ts\":" << ts
           << ",\"pid\":" << pid << ",\"tid\":" << lane_of(e) << "}";
        break;
      case EventKind::kServiceStart:
        os << "{\"name\":\"service\",\"cat\":\"req\",\"ph\":\"b\",\"id\":"
           << e.request << ",\"ts\":" << ts << ",\"pid\":" << pid
           << ",\"tid\":" << lane_of(e) << "}";
        break;
      case EventKind::kServiceEnd:
        os << "{\"name\":\"service\",\"cat\":\"req\",\"ph\":\"e\",\"id\":"
           << e.request << ",\"ts\":" << ts << ",\"pid\":" << pid
           << ",\"tid\":" << lane_of(e) << "}";
        break;
      case EventKind::kLbValue:
      case EventKind::kIoWait: {
        os << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":" << ts
           << ",\"pid\":" << pid << ",\"tid\":" << lane_of(e)
           << ",\"args\":{\"value\":" << e.value << "}}";
        break;
      }
      default:
        os << "{\"name\":\"" << name
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts << ",\"pid\":" << pid
           << ",\"tid\":" << lane_of(e) << ",\"args\":{\"req\":" << e.request
           << ",\"value\":" << e.value << ",\"aux\":" << e.aux << "}}";
        break;
    }
  });
  os << "\n]}\n";
}

void write_trace(std::ostream& os, const TraceCollector& trace,
                 TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl: write_jsonl(os, trace); return;
    case TraceFormat::kChrome: write_chrome_json(os, trace); return;
  }
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("trace line " + std::to_string(line_no) + ": " +
                           why);
}

// Extract the raw token after `"key":` (up to the next ',' or '}').
std::string_view raw_field(const std::string& line, const char* key,
                           std::size_t line_no) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) parse_fail(line_no, std::string("missing ") + key);
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  bool in_string = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (c == '"') in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return std::string_view(line).substr(begin, end - begin);
}

std::int64_t int_field(const std::string& line, const char* key,
                       std::size_t line_no) {
  const auto raw = raw_field(line, key, line_no);
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc() || ptr != raw.data() + raw.size())
    parse_fail(line_no, std::string("bad integer for ") + key);
  return v;
}

double double_field(const std::string& line, const char* key,
                    std::size_t line_no) {
  const auto raw = raw_field(line, key, line_no);
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string(raw), &pos);
    if (pos != raw.size()) parse_fail(line_no, std::string("bad number for ") + key);
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (...) {
    parse_fail(line_no, std::string("bad number for ") + key);
  }
  return 0;  // unreachable
}

std::string string_field(const std::string& line, const char* key,
                         std::size_t line_no) {
  auto raw = raw_field(line, key, line_no);
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"')
    parse_fail(line_no, std::string("bad string for ") + key);
  return std::string(raw.substr(1, raw.size() - 2));
}

std::optional<EventKind> parse_kind(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(EventKind::kRecoveryIntervention);
       ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (s == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<Tier> parse_tier(const std::string& s) {
  for (int t = 0; t <= static_cast<int>(Tier::kCache); ++t) {
    const auto tier = static_cast<Tier>(t);
    if (s == to_string(tier)) return tier;
  }
  return std::nullopt;
}

}  // namespace

std::vector<TraceEvent> read_jsonl(std::istream& is) {
  std::vector<TraceEvent> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceEvent e;
    e.at = sim::SimTime::nanos(int_field(line, "t_ns", line_no));
    const auto kind = parse_kind(string_field(line, "kind", line_no));
    if (!kind) parse_fail(line_no, "unknown kind");
    e.kind = *kind;
    const auto tier = parse_tier(string_field(line, "tier", line_no));
    if (!tier) parse_fail(line_no, "unknown tier");
    e.tier = *tier;
    e.node = static_cast<std::int16_t>(int_field(line, "node", line_no));
    e.worker = static_cast<std::int32_t>(int_field(line, "worker", line_no));
    e.request = static_cast<std::uint64_t>(int_field(line, "req", line_no));
    e.value = double_field(line, "value", line_no);
    e.aux = static_cast<std::int32_t>(int_field(line, "aux", line_no));
    out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> read_jsonl_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read trace file " + path);
  return read_jsonl(f);
}

}  // namespace ntier::obs
