#include "millib/detector.h"

#include <algorithm>

namespace ntier::millib {

double MillibottleneckDetector::threshold_for(
    const metrics::GaugeSeries& gauge) const {
  std::vector<double> maxima;
  maxima.reserve(gauge.num_windows());
  for (std::size_t i = 0; i < gauge.num_windows(); ++i)
    maxima.push_back(gauge.max(i));
  if (maxima.empty()) return config_.min_absolute;
  std::nth_element(maxima.begin(), maxima.begin() + maxima.size() / 2,
                   maxima.end());
  const double median = maxima[maxima.size() / 2];
  return std::max(config_.min_absolute, median * config_.median_multiplier);
}

std::vector<SpikeEpisode> MillibottleneckDetector::detect(
    const metrics::GaugeSeries& gauge) const {
  const double threshold = threshold_for(gauge);
  std::vector<SpikeEpisode> episodes;
  bool in_spike = false;
  int quiet = 0;
  for (std::size_t i = 0; i < gauge.num_windows(); ++i) {
    const double v = gauge.max(i);
    if (v >= threshold) {
      if (!in_spike) {
        episodes.push_back(SpikeEpisode{gauge.window_start(i),
                                        gauge.window_start(i + 1), v});
        in_spike = true;
      } else {
        episodes.back().end = gauge.window_start(i + 1);
        episodes.back().peak = std::max(episodes.back().peak, v);
      }
      quiet = 0;
    } else if (in_spike) {
      ++quiet;
      if (quiet > config_.merge_gap_windows) {
        in_spike = false;
        quiet = 0;
      }
    }
  }
  return episodes;
}

double ThroughputDipDetector::median_throughput(
    const metrics::TimeSeries& completions) const {
  std::vector<double> counts;
  counts.reserve(completions.num_windows());
  for (std::size_t i = 0; i < completions.num_windows(); ++i)
    counts.push_back(static_cast<double>(completions.count(i)));
  if (counts.empty()) return 0.0;
  std::nth_element(counts.begin(), counts.begin() + counts.size() / 2,
                   counts.end());
  return counts[counts.size() / 2];
}

std::vector<SpikeEpisode> ThroughputDipDetector::detect(
    const metrics::TimeSeries& completions,
    const metrics::GaugeSeries& queue) const {
  const double median = median_throughput(completions);
  if (median <= 0) return {};
  const double dip_threshold = median * config_.dip_fraction;
  std::vector<SpikeEpisode> episodes;
  bool in_dip = false;
  int quiet = 0;
  const std::size_t n =
      std::min(completions.num_windows(), queue.num_windows());
  for (std::size_t i = 0; i < n; ++i) {
    const bool dip =
        static_cast<double>(completions.count(i)) < dip_threshold &&
        queue.max(i) >= config_.min_queue;
    if (dip) {
      if (!in_dip) {
        episodes.push_back(SpikeEpisode{completions.window_start(i),
                                        completions.window_start(i + 1),
                                        queue.max(i)});
        in_dip = true;
      } else {
        episodes.back().end = completions.window_start(i + 1);
        episodes.back().peak = std::max(episodes.back().peak, queue.max(i));
      }
      quiet = 0;
    } else if (in_dip) {
      ++quiet;
      if (quiet > config_.merge_gap_windows) {
        in_dip = false;
        quiet = 0;
      }
    }
  }
  return episodes;
}

bool overlaps_any(
    const SpikeEpisode& episode,
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& truth,
    sim::SimTime slack) {
  for (const auto& [s, e] : truth) {
    if (episode.start <= e + slack && episode.end + slack >= s) return true;
  }
  return false;
}

}  // namespace ntier::millib
