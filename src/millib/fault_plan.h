#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::millib {

/// The fault families the chaos harness can inject. `kCapacityStall` is the
/// paper's millibottleneck generalised (the CapacityStallInjector's single
/// family); the rest extend the reproduction toward the failures a
/// production balancer must survive: whole-backend crashes, lossy/slow
/// links, leaked connection slots, degraded writeback devices, and
/// *correlated* stalls hitting several backends inside one window (the case
/// the per-worker Busy/Error state machine is blind to).
enum class FaultKind : std::uint8_t {
  kCapacityStall,    // one backend's CPU loses `severity` of its capacity
  kCorrelatedStall,  // the same stall applied to every backend at once
  kCrash,            // backend refuses all new work, restarts after duration
  kLinkFault,        // extra latency + packet loss on the client link
  kPoolLeak,         // endpoint slots held past their response
  kDiskDegrade,      // writeback bandwidth scaled down (longer flush stalls)
  // -- KV data tier (appended to keep prior numeric values stable) ------------
  kReplicaCrash,     // one KV replica fail-stops; quorums continue at N-1,
                     // hinted handoff replays the missed writes on restart
  kShardMigration,   // seeded rebalance of one shard (worker = shard index);
                     // chunked copy CPU + a write-shedding handover window
  // -- cache tier (appended to keep prior numeric values stable) ---------------
  kInvalidationStorm,  // write burst sweeping the hot key set: periodic
                       // invalidations of the hottest Zipf ranks for the
                       // fault's duration (severity scales the sweep width)
  // -- gray failures (appended to keep prior numeric values stable) -------------
  // Differential-observability faults: the data path degrades while the
  // probe/health path keeps answering at normal speed, so the health prober,
  // the circuit breaker and prequal's piggybacked load reports all keep
  // reporting the node healthy.
  kGrayDataPath,     // one Tomcat's request service time inflated
                     // 1/(1-severity)x (0.8 => 5x, 0.95 => 20x) while
                     // probe() and probe_load() answer at pre-fault speed
                     // and report frozen pre-fault load values
  kGrayLink,         // partial asymmetric loss + latency on ONE Apache's
                     // Tomcat link (worker = Apache index); the other
                     // Apaches' probes still see a healthy backend
  kGraySlowReplica,  // one KV replica stays alive but executes every op
                     // 1/(1-severity)x slower; quorum R masks the failure
                     // counters while the tail absorbs the slow votes
};

std::string to_string(FaultKind k);

/// One scheduled fault: what, where, when, how hard. A plan is just a list
/// of these; executors map each spec onto the live components.
struct FaultSpec {
  FaultKind kind = FaultKind::kCapacityStall;
  /// Target backend index; -1 targets every backend (kCorrelatedStall and
  /// kLinkFault ignore it).
  int worker = -1;
  sim::SimTime start;
  sim::SimTime duration;
  /// Stall: fraction of CPU capacity removed. DiskDegrade: fraction of
  /// writeback bandwidth removed.
  double severity = 1.0;
  sim::SimTime extra_latency;   // kLinkFault: added one-way latency
  double loss_probability = 0;  // kLinkFault: packet loss on the client link
  int leak_slots = 0;           // kPoolLeak: slots held per balancer

  sim::SimTime end() const { return start + duration; }
  /// Stable single-line rendering — the unit the determinism tests compare.
  std::string to_string() const;
};

/// Knobs for `FaultPlan::randomized`. Defaults produce a varied schedule
/// that fits inside a ~20 s scaled run and clears before its end.
struct FaultPlanConfig {
  /// No fault starts after this instant (clears may run `max_duration`
  /// longer).
  sim::SimTime horizon = sim::SimTime::seconds(18);
  sim::SimTime initial_offset = sim::SimTime::seconds(4);
  /// Mean gap between consecutive fault starts (exponential).
  sim::SimTime mean_gap = sim::SimTime::millis(1500);
  sim::SimTime min_duration = sim::SimTime::millis(120);
  sim::SimTime max_duration = sim::SimTime::millis(1800);
  std::size_t max_faults = 16;
  /// Relative draw weights indexed by FaultKind order; zero disables a kind.
  /// The KV, cache and gray kinds default to zero (no-ops against a MySQL
  /// tier, or deliberately opt-in for gray-failure studies); scenarios raise
  /// them explicitly. Appending zero-weight tail entries leaves every
  /// existing seed's draw sequence intact.
  std::vector<double> kind_weights = {3, 1, 2, 2, 1, 1, 0, 0, 0, 0, 0, 0};
  double min_severity = 0.6;
  double max_severity = 1.0;
  sim::SimTime max_extra_latency = sim::SimTime::millis(20);
  double max_loss_probability = 0.4;
  int leak_slots = 8;
};

/// A composable, seed-deterministic fault schedule. Identical (seed, config,
/// num_workers) inputs produce byte-identical plans — the property the chaos
/// determinism test guards.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  std::size_t size() const { return specs.size(); }

  /// Append another plan's specs (composability: mix a hand-written crash
  /// scenario with a randomized background schedule).
  FaultPlan& merge(const FaultPlan& other);

  /// Seeded random schedule over `num_workers` backends.
  static FaultPlan randomized(std::uint64_t seed, const FaultPlanConfig& config,
                              int num_workers);

  /// The CapacityStallInjector's periodic schedule expressed as a plan —
  /// the generalisation path from the paper's single fault family.
  static FaultPlan periodic_stalls(int worker, sim::SimTime period,
                                   sim::SimTime duration, double severity,
                                   sim::SimTime initial_offset,
                                   sim::SimTime horizon);

  /// A single fault, for hand-built scenarios.
  static FaultPlan single(FaultSpec spec);

  /// One line per spec, in schedule order — the episode-trace artefact.
  std::string trace_string() const;
};

/// What an executor records per applied spec (mirrors StallEpisode for the
/// generic harness).
struct FaultEvent {
  FaultSpec spec;
  sim::SimTime applied;
  sim::SimTime cleared;
};

}  // namespace ntier::millib
