#pragma once

#include <vector>

#include "metrics/time_series.h"
#include "sim/time.h"

namespace ntier::millib {

/// A detected queue spike: contiguous windows whose peak exceeds the
/// detection threshold. This is the paper's diagnosis methodology (§III-B):
/// "large spikes in the [queue length] graph represent an abnormally large
/// number of queued requests, which ... are usually indicative of
/// bottlenecks".
struct SpikeEpisode {
  sim::SimTime start;   // first window above threshold
  sim::SimTime end;     // end of the last window above threshold
  double peak = 0;      // max gauge value inside the episode
};

struct DetectorConfig {
  /// Multiple of the series' median window-max that counts as a spike.
  double median_multiplier = 5.0;
  /// Absolute floor below which a window never counts as a spike (filters
  /// noise on near-idle gauges).
  double min_absolute = 10.0;
  /// Merge episodes separated by fewer than this many quiet windows.
  int merge_gap_windows = 1;
};

/// Offline spike detection over a queue-length gauge.
class MillibottleneckDetector {
 public:
  explicit MillibottleneckDetector(DetectorConfig config = {})
      : config_(config) {}

  std::vector<SpikeEpisode> detect(const metrics::GaugeSeries& gauge) const;

  /// The effective threshold used for `gauge` (for reporting).
  double threshold_for(const metrics::GaugeSeries& gauge) const;

 private:
  DetectorConfig config_;
};

/// True when `episode` overlaps (within `slack`) any of the ground-truth
/// intervals — used to validate the detector against injected stalls.
bool overlaps_any(const SpikeEpisode& episode,
                  const std::vector<std::pair<sim::SimTime, sim::SimTime>>& truth,
                  sim::SimTime slack);

/// The complementary signal: a server inside a millibottleneck *completes*
/// almost nothing while work keeps arriving, so per-window throughput dips
/// far below its norm exactly when the queue rises. This mirrors the
/// fine-grained throughput/concurrency correlation analysis of Wang et
/// al. [27], which the paper uses to infer real-time server state.
struct ThroughputDipConfig {
  /// A window counts as a dip when its completions fall below this fraction
  /// of the median window's.
  double dip_fraction = 0.25;
  /// Ignore dips when the concurrent queue gauge is below this (an idle
  /// server completes nothing without being bottlenecked).
  double min_queue = 5.0;
  int merge_gap_windows = 1;
};

class ThroughputDipDetector {
 public:
  explicit ThroughputDipDetector(ThroughputDipConfig config = {})
      : config_(config) {}

  /// `completions` counts completed work per window; `queue` is the
  /// concurrent queue-length gauge of the same server.
  std::vector<SpikeEpisode> detect(const metrics::TimeSeries& completions,
                                   const metrics::GaugeSeries& queue) const;

  double median_throughput(const metrics::TimeSeries& completions) const;

 private:
  ThroughputDipConfig config_;
};

}  // namespace ntier::millib
