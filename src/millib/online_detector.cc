#include "millib/online_detector.h"

#include <algorithm>

namespace ntier::millib {

using obs::EventKind;
using obs::Tier;
using obs::TraceEvent;
using sim::SimTime;

double OnlineScore::median_latency_ms() const {
  if (latency_ms.empty()) return 0.0;
  std::vector<double> sorted = latency_ms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

OnlineDetector::OnlineDetector(OnlineDetectorConfig config,
                               obs::TraceCollector* tail)
    : config_(config), tail_(tail) {
  if (config_.window.ns() <= 0) config_.window = SimTime::millis(50);
  if (config_.baseline_windows < 1) config_.baseline_windows = 1;
  if (config_.min_baseline < 1) config_.min_baseline = 1;
  if (config_.min_baseline > config_.baseline_windows)
    config_.min_baseline = config_.baseline_windows;
}

OnlineDetector::NodeState& OnlineDetector::node(int n) {
  const std::size_t idx = static_cast<std::size_t>(n);
  if (idx >= nodes_.size()) nodes_.resize(idx + 1);
  return nodes_[idx];
}

double OnlineDetector::baseline_median(const NodeState& st) const {
  std::vector<double> vals(st.baseline.begin(),
                           st.baseline.begin() +
                               static_cast<std::ptrdiff_t>(st.baseline_count));
  std::sort(vals.begin(), vals.end());
  const std::size_t mid = vals.size() / 2;
  if (vals.size() % 2) return vals[mid];
  return 0.5 * (vals[mid - 1] + vals[mid]);
}

bool OnlineDetector::frozen_now(const NodeState& st, SimTime now) const {
  // Every balancer that has ever ranked this worker has gone quiet on it:
  // nothing completed there for lb_freeze_min, so the value each policy acts
  // on is stale tier-wide. Requiring *all* copies frozen (not any) keeps the
  // quiet regime at zero false positives — a rarely-routed worker under a
  // sticky policy can legitimately starve one balancer's copy.
  if (st.last_lb.empty()) return false;
  for (const auto& [balancer, at] : st.last_lb)
    if (now - at < config_.lb_freeze_min) return false;
  return true;
}

void OnlineDetector::mark_episode(const OnlineEpisode& ep, SimTime t0,
                                  SimTime t1, int n) {
  if (!tail_) return;
  const SimTime cap = ep.onset + config_.mark_max;
  if (t1 > cap) t1 = cap;
  if (t0 >= t1) return;
  tail_->mark_range(t0, t1, n);
}

void OnlineDetector::evaluate_node(int n, NodeState& st, SimTime win_start,
                                   SimTime win_end) {
  const bool baseline_ready =
      st.baseline_count >= static_cast<std::size_t>(config_.min_baseline);
  bool spike = false;
  if (baseline_ready) {
    const double threshold =
        std::max(config_.queue_min_absolute,
                 config_.queue_median_multiplier * baseline_median(st));
    spike = st.window_max >= threshold;
  }

  if (st.open_episode >= 0) {
    OnlineEpisode& ep = episodes_[static_cast<std::size_t>(st.open_episode)];
    if (spike) {
      ep.end = win_end;
      ep.queue_peak = std::max(ep.queue_peak, st.window_max);
      ep.iowait_peak = std::max(ep.iowait_peak, st.iowait_recent_peak);
      st.quiet_windows = 0;
      mark_episode(ep, win_start, win_end + config_.mark_post, n);
    } else if (++st.quiet_windows >= config_.close_after_quiet) {
      ep.closed = true;
      mark_episode(ep, ep.end, ep.end + config_.mark_post, n);
      st.open_episode = -1;
      st.quiet_windows = 0;
    }
  } else if (spike) {
    if (!st.candidate) {
      st.candidate = true;
      st.candidate_onset = win_start;
    }
    const SimTime horizon = st.candidate_onset - config_.evidence_slack;
    const bool saturated = st.saw_iowait_high && st.last_iowait_high >= horizon;
    const bool frozen = (st.saw_freeze && st.last_freeze_evidence >= horizon) ||
                        frozen_now(st, win_end);
    if (saturated && frozen) {
      OnlineEpisode ep;
      ep.node = n;
      ep.onset = st.candidate_onset;
      ep.detected_at = win_end;
      ep.end = win_end;
      ep.queue_peak = st.window_max;
      ep.iowait_peak = st.iowait_recent_peak;
      st.open_episode = static_cast<int>(episodes_.size());
      episodes_.push_back(ep);
      st.candidate = false;
      st.quiet_windows = 0;
      mark_episode(ep, ep.onset - config_.mark_pre,
                   win_end + config_.mark_post, n);
    }
  } else {
    // Spike lapsed without the full signature: drop the candidate. This is
    // the false-positive guard — a queue wobble with healthy iowait and a
    // live lb_value never becomes an episode.
    st.candidate = false;
  }

  // The committed count persists across windows, so the next window's max
  // starts from the current level, and the baseline ring absorbs this
  // window's max (spiky windows included; the median is robust to them).
  if (st.baseline.empty())
    st.baseline.assign(static_cast<std::size_t>(config_.baseline_windows), 0.0);
  st.baseline[st.baseline_next] = st.window_max;
  st.baseline_next = (st.baseline_next + 1) % st.baseline.size();
  st.baseline_count = std::min(st.baseline_count + 1, st.baseline.size());
  st.window_max = st.committed;
  st.iowait_recent_peak = 0;
}

void OnlineDetector::evaluate_window(std::int64_t w) {
  ++windows_evaluated_;
  const SimTime win_start = config_.window * w;
  const SimTime win_end = config_.window * (w + 1);
  for (std::size_t n = 0; n < nodes_.size(); ++n)
    evaluate_node(static_cast<int>(n), nodes_[n], win_start, win_end);
}

void OnlineDetector::roll_windows_to(std::int64_t w) {
  while (current_window_ < w) {
    evaluate_window(current_window_);
    ++current_window_;
  }
}

void OnlineDetector::attribute_vlrt(const TraceEvent& e) {
  if (tail_) tail_->mark_request(e.request);
  // Join the completion to the most recent overlapping episode (scan from
  // the back; episodes are in detection order).
  const SimTime slack = config_.evidence_slack;
  for (std::size_t i = episodes_.size(); i-- > 0;) {
    OnlineEpisode& ep = episodes_[i];
    if (ep.end + SimTime::seconds(2) < e.at && ep.closed) break;
    const bool open = !ep.closed;
    if (e.at >= ep.onset - slack && (open || e.at <= ep.end + slack)) {
      ++ep.vlrts;
      return;
    }
  }
}

void OnlineDetector::observe(const TraceEvent& e) {
  ++events_observed_;
  roll_windows_to(e.at.ns() / config_.window.ns());
  switch (e.kind) {
    case EventKind::kGetEndpointAttempt:
    case EventKind::kGetEndpointTimeout:
    case EventKind::kEndpointRelease: {
      if (e.worker < 0) break;
      NodeState& st = node(e.worker);
      st.committed += e.kind == EventKind::kGetEndpointAttempt ? 1.0 : -1.0;
      st.window_max = std::max(st.window_max, st.committed);
      break;
    }
    case EventKind::kIoWait: {
      if (e.tier != Tier::kTomcat || e.node < 0) break;
      NodeState& st = node(e.node);
      st.iowait_recent_peak = std::max(st.iowait_recent_peak, e.value);
      if (e.value >= config_.iowait_threshold) {
        st.saw_iowait_high = true;
        st.last_iowait_high = e.at;
      }
      break;
    }
    case EventKind::kLbValue: {
      if (e.tier != Tier::kBalancer || e.worker < 0) break;
      NodeState& st = node(e.worker);
      auto [it, inserted] = st.last_lb.try_emplace(e.node, e.at);
      if (!inserted) {
        if (e.at - it->second >= config_.lb_freeze_min) {
          st.saw_freeze = true;
          st.last_freeze_evidence = e.at;
        }
        it->second = e.at;
      }
      break;
    }
    case EventKind::kClientDone:
      if (e.aux == 0 && e.value >= config_.vlrt_threshold_ms)
        attribute_vlrt(e);
      break;
    default:
      break;
  }
}

void OnlineDetector::finish(SimTime at) {
  roll_windows_to(at.ns() / config_.window.ns() + 1);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& st = nodes_[n];
    if (st.open_episode < 0) continue;
    OnlineEpisode& ep = episodes_[static_cast<std::size_t>(st.open_episode)];
    ep.closed = true;
    mark_episode(ep, ep.end, ep.end + config_.mark_post, static_cast<int>(n));
    st.open_episode = -1;
  }
}

OnlineScore OnlineDetector::score(
    const std::vector<OnlineEpisode>& episodes,
    const std::vector<std::vector<std::pair<SimTime, SimTime>>>& truth_by_node,
    SimTime slack) {
  OnlineScore s;
  std::vector<bool> episode_matched(episodes.size(), false);
  for (std::size_t n = 0; n < truth_by_node.size(); ++n) {
    for (const auto& [start, end] : truth_by_node[n]) {
      ++s.truth;
      const SimTime lo = start - slack;
      const SimTime hi = end + slack;
      bool matched = false;
      for (std::size_t i = 0; i < episodes.size(); ++i) {
        const OnlineEpisode& ep = episodes[i];
        if (ep.node != static_cast<int>(n)) continue;
        if (ep.onset > hi || ep.end < lo) continue;
        episode_matched[i] = true;
        if (!matched) {
          matched = true;
          s.latency_ms.push_back((ep.detected_at - start).to_millis());
        }
      }
      if (matched)
        ++s.matched;
      else
        ++s.missed;
    }
  }
  for (std::size_t i = 0; i < episodes.size(); ++i)
    if (!episode_matched[i]) ++s.false_positives;
  return s;
}

}  // namespace ntier::millib
