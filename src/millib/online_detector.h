#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace ntier::millib {

/// Tuning of the streaming millibottleneck detector. Defaults mirror the
/// offline pipeline (50 ms windows, 5x-median queue spikes with an absolute
/// floor, 0.5 iowait saturation, 100 ms lb_value freeze) so online and
/// offline verdicts are comparable episode for episode.
struct OnlineDetectorConfig {
  /// Evaluation window (the paper's fine-grained monitoring granularity).
  sim::SimTime window = sim::SimTime::millis(50);
  /// Queue spike: window max >= max(min_absolute, multiplier * median of the
  /// trailing per-window maxima) — the same rule DetectorConfig applies
  /// offline, with a trailing ring standing in for the full series.
  double queue_median_multiplier = 5.0;
  double queue_min_absolute = 10.0;
  /// Trailing window-max ring per Tomcat the baseline median is taken over.
  int baseline_windows = 40;
  /// Windows of baseline required before detection may fire (warmup guard:
  /// a median over too few windows is noise, and every spurious open is a
  /// false positive in the quiet regime).
  int min_baseline = 8;
  /// An iowait sample at/above this fraction is saturation evidence.
  double iowait_threshold = 0.5;
  /// All balancers silent on a worker for this long = frozen lb_value.
  sim::SimTime lb_freeze_min = sim::SimTime::millis(100);
  /// How far back evidence (saturation / freeze) may predate the queue-spike
  /// onset and still confirm the episode.
  sim::SimTime evidence_slack = sim::SimTime::millis(150);
  /// Quiet windows after the last spiking one before the episode closes.
  int close_after_quiet = 3;
  /// VLRT definition used to join late completions onto open episodes and
  /// to trigger the tail sampler's keep-this-request flush.
  double vlrt_threshold_ms = 1000.0;
  /// Margin the tail sampler keeps around a detected episode.
  sim::SimTime mark_pre = sim::SimTime::millis(150);
  sim::SimTime mark_post = sim::SimTime::millis(150);
  /// Cap on the per-episode marked context, measured from the onset. The
  /// detector keeps tracking an episode through its whole queue drain, but
  /// the drain can outlast the stall several times over — marking all of it
  /// would defeat the volume reduction (VLRTs born in the drain are still
  /// retained end to end via their own request marks).
  sim::SimTime mark_max = sim::SimTime::millis(600);
};

/// One episode the detector flagged during the run. `onset` is the start of
/// the first spiking window (what detection latency is measured against);
/// `detected_at` is when the full signature — queue spike + saturation +
/// frozen lb_value — was confirmed, i.e. when an operator/controller could
/// have acted.
struct OnlineEpisode {
  int node = -1;
  sim::SimTime onset;
  sim::SimTime detected_at;
  sim::SimTime end;
  double queue_peak = 0;
  double iowait_peak = 0;
  std::uint64_t vlrts = 0;
  bool closed = false;

  double detection_latency_ms() const {
    return (detected_at - onset).to_millis();
  }
};

/// Online-vs-ground-truth scorecard for one run.
struct OnlineScore {
  std::uint64_t truth = 0;
  std::uint64_t matched = 0;
  std::uint64_t missed = 0;
  std::uint64_t false_positives = 0;
  /// detected_at minus the truth episode's start, per matched episode.
  std::vector<double> latency_ms;

  double median_latency_ms() const;
  double match_fraction() const {
    return truth ? static_cast<double>(matched) / static_cast<double>(truth)
                 : 0.0;
  }
};

/// Streaming millibottleneck detection over the live event stream: a
/// TraceSink consuming exactly what the offline CausalChainAnalyzer
/// reconstructs post hoc — per-Tomcat committed queues from balancer deltas,
/// kIoWait saturation, kLbValue freshness — and flagging episodes while they
/// happen. Pure function of the event stream: no RNG, no clocks, so runs
/// stay byte-deterministic and sweep results jobs-invariant.
///
/// When a tail-sampling TraceCollector is attached, the detector marks
/// episode windows (node-scoped) and VLRT requests for retention — the
/// hindsight signal tail-based sampling is built on.
class OnlineDetector : public obs::TraceSink {
 public:
  explicit OnlineDetector(OnlineDetectorConfig config = {},
                          obs::TraceCollector* tail = nullptr);

  void observe(const obs::TraceEvent& e) override;
  /// Close the books at end of run (flush the last window, close open
  /// episodes at `at`).
  void finish(sim::SimTime at);

  const std::vector<OnlineEpisode>& episodes() const { return episodes_; }
  std::uint64_t events_observed() const { return events_observed_; }
  std::uint64_t windows_evaluated() const { return windows_evaluated_; }
  const OnlineDetectorConfig& config() const { return config_; }

  /// Score detected episodes against per-node ground-truth intervals
  /// (Experiment::flush_intervals, or offline analyzer episodes). A truth
  /// interval is matched when an episode on the same node overlaps it
  /// (± slack); episodes overlapping no truth interval are false positives.
  static OnlineScore score(
      const std::vector<OnlineEpisode>& episodes,
      const std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>>&
          truth_by_node,
      sim::SimTime slack = sim::SimTime::millis(500));

 private:
  struct NodeState {
    double committed = 0;
    double window_max = 0;
    std::vector<double> baseline;  // trailing window maxima (ring)
    std::size_t baseline_next = 0;
    std::size_t baseline_count = 0;

    bool candidate = false;
    sim::SimTime candidate_onset;
    int open_episode = -1;  // index into episodes_
    int quiet_windows = 0;

    bool saw_iowait_high = false;
    sim::SimTime last_iowait_high;
    double iowait_recent_peak = 0;

    std::map<int, sim::SimTime> last_lb;  // balancer node -> last update
    bool saw_freeze = false;
    sim::SimTime last_freeze_evidence;
  };

  NodeState& node(int n);
  void roll_windows_to(std::int64_t w);
  void evaluate_window(std::int64_t w);
  void evaluate_node(int n, NodeState& st, sim::SimTime win_start,
                     sim::SimTime win_end);
  double baseline_median(const NodeState& st) const;
  bool frozen_now(const NodeState& st, sim::SimTime now) const;
  void attribute_vlrt(const obs::TraceEvent& e);
  /// mark_range clamped to the episode's [onset - mark_pre, onset + mark_max]
  /// context budget.
  void mark_episode(const OnlineEpisode& ep, sim::SimTime t0, sim::SimTime t1,
                    int n);

  OnlineDetectorConfig config_;
  obs::TraceCollector* tail_ = nullptr;
  std::vector<NodeState> nodes_;
  std::vector<OnlineEpisode> episodes_;
  std::int64_t current_window_ = 0;
  std::uint64_t events_observed_ = 0;
  std::uint64_t windows_evaluated_ = 0;
};

}  // namespace ntier::millib
