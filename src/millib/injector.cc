#include "millib/injector.h"

#include <algorithm>

namespace ntier::millib {

CapacityStallInjector::CapacityStallInjector(sim::Simulation& simu,
                                             os::CpuResource& cpu,
                                             InjectorConfig config,
                                             std::string name)
    : sim_(simu),
      cpu_(cpu),
      config_(config),
      name_(std::move(name)),
      rng_(simu.rng().fork()) {
  sim_.after(config_.initial_offset, [this] { begin_stall(); });
}

void CapacityStallInjector::arm() {
  if (config_.max_episodes != 0 && episodes_.size() >= config_.max_episodes)
    return;
  const sim::SimTime gap = config_.jitter
                               ? rng_.exponential_time(config_.period)
                               : config_.period;
  sim_.after(gap, [this] { begin_stall(); });
}

void CapacityStallInjector::begin_stall() {
  stalled_ = true;
  saved_factor_ = cpu_.capacity_factor();
  cpu_.set_capacity_factor(std::min(saved_factor_, 1.0 - config_.severity));
  const sim::SimTime start = sim_.now();
  NTIER_TRACE_EVENT(trace_events_, start, obs::EventKind::kStallStart,
                    trace_tier_, trace_node_, -1, 0, config_.severity);
  sim_.after(config_.duration, [this, start] {
    cpu_.set_capacity_factor(saved_factor_);
    stalled_ = false;
    episodes_.push_back(StallEpisode{start, sim_.now(), config_.severity});
    NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kStallStop,
                      trace_tier_, trace_node_, -1, 0, config_.severity);
    arm();
  });
}

InjectorConfig gc_pause_profile(sim::SimTime period, sim::SimTime pause) {
  InjectorConfig c;
  c.period = period;
  c.duration = pause;
  c.severity = 1.0;
  c.jitter = true;
  return c;
}

InjectorConfig dvfs_profile(sim::SimTime period, sim::SimTime dip,
                            double severity) {
  InjectorConfig c;
  c.period = period;
  c.duration = dip;
  c.severity = severity;
  c.jitter = true;
  return c;
}

InjectorConfig vm_consolidation_profile(sim::SimTime period, sim::SimTime span,
                                        double severity) {
  InjectorConfig c;
  c.period = period;
  c.duration = span;
  c.severity = severity;
  c.jitter = true;
  return c;
}

}  // namespace ntier::millib
