#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "millib/detector.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ntier::millib {

/// Offline reconstruction of the paper's causal chain from a cross-tier
/// event trace (obs::TraceCollector output):
///
///   pdflush writeback → iowait spike → stalled (frozen) lb_value →
///   committed-queue spike → retransmission-offset VLRT cluster
///
/// The analyzer needs nothing but the trace: per-Tomcat committed queues are
/// rebuilt from get_endpoint_attempt / get_endpoint_timeout /
/// endpoint_release deltas and fed to the same MillibottleneckDetector the
/// online pipeline uses, iowait comes from the periodic kIoWait samples, and
/// lb_value freezes are gaps in the kLbValue update stream.
struct CausalChainConfig {
  /// Window width for the reconstructed committed-queue gauges (the paper's
  /// 50 ms fine-grained monitoring granularity).
  sim::SimTime window = sim::SimTime::millis(50);
  /// Spike detection over the reconstructed queues.
  DetectorConfig detector;
  /// Temporal slack when joining links to an OS episode: effects may lead
  /// the episode's bookkeeping slightly (threshold-triggered flushes) and
  /// trail it (queues drain after the stall lifts).
  sim::SimTime slack = sim::SimTime::millis(150);
  /// An iowait sample at or above this fraction counts as an iowait spike.
  double iowait_threshold = 0.5;
  /// A gap this long between consecutive lb_value updates for a worker,
  /// overlapping the episode, counts as a frozen lb_value (nothing
  /// completed, so the ranking the policy acts on is stale).
  sim::SimTime lb_freeze_min = sim::SimTime::millis(100);
  /// VLRT definition (paper: response time > 1 s).
  double vlrt_threshold_ms = 1000.0;
  /// A KV quorum op completing with at least this much wait counts as slow
  /// when joining kv_quorum_read/write events onto a KV-tier episode.
  double kv_slow_quorum_ms = 50.0;
};

/// One reconstructed hop of the chain, relative to its OS episode.
struct ChainLink {
  bool present = false;
  /// Onset lag from the episode start (negative = led the episode).
  double lag_ms = 0.0;
  /// Link-specific magnitude: peak iowait fraction, freeze-gap ms, queue
  /// peak, or retransmission count.
  double magnitude = 0.0;
  std::uint64_t count = 0;
};

/// One OS-level episode (pdflush writeback or injected capacity stall) with
/// the downstream links the analyzer managed to join to it.
struct EpisodeChain {
  obs::Tier tier = obs::Tier::kTomcat;
  int node = -1;
  /// True for injected capacity stalls (stall_start/stall_stop), false for
  /// organic pdflush episodes.
  bool synthetic = false;
  sim::SimTime start;
  sim::SimTime end;
  /// Dirty bytes written back (pdflush) or severity (synthetic stall).
  double magnitude = 0.0;

  ChainLink iowait;
  ChainLink frozen_lb;
  ChainLink queue_spike;
  ChainLink retransmits;
  /// Slow KV quorum completions (wait >= kv_slow_quorum_ms) during the
  /// episode — the key-level signature of a hot-shard millibottleneck:
  /// a stalled shard member slows every quorum touching that shard, which
  /// no server-choice policy upstream can route around. Joined onto KV- and
  /// cache-tier episodes (a storm's miss spike lands on the hot shard);
  /// not part of full_chain().
  ChainLink kv_quorum;
  /// Cache misses during a cache-tier episode (invalidation storm): the
  /// miss-spike hop of the stampede chain write burst → invalidation storm
  /// → miss spike → hot-shard queue → VLRT. Only joined onto cache-tier
  /// episodes; not part of full_chain().
  ChainLink cache_miss;
  /// Overload-control sheds (admission_shed / deadline_expired events) fired
  /// while the episode — plus slack — was in progress: the counter-measures
  /// reacting to the stall. Not part of full_chain(): sheds only exist when
  /// a controller is configured.
  ChainLink sheds;
  /// VLRT requests attributed to this episode (filled by the analyzer).
  std::uint64_t vlrts = 0;

  /// The full paper chain: iowait + frozen lb_value + queue spike +
  /// retransmission cluster. Synthetic stalls have no writeback, so the
  /// iowait link is not required of them.
  bool full_chain() const {
    return (iowait.present || synthetic) && frozen_lb.present &&
           queue_spike.present && retransmits.present;
  }
};

/// Which per-request segment dominated a VLRT's latency.
enum class Hop : std::uint8_t {
  kConnect,    // client_send → worker_pickup (drops + backlog time)
  kBalancing,  // worker_pickup → endpoint_acquire (get_endpoint polling)
  kBackend,    // endpoint_acquire → endpoint_release (queue + service)
  kReply,      // endpoint_release → client_done
};

const char* to_string(Hop h);

struct VlrtAttribution {
  std::uint64_t request = 0;
  double response_ms = 0.0;
  /// Index into CausalChainReport::chains, -1 when unexplained.
  int episode = -1;
  Hop dominant = Hop::kConnect;
  /// Per-hop milliseconds, indexed by Hop.
  std::array<double, 4> hop_ms{};
  std::uint32_t retransmissions = 0;
  std::int32_t tomcat = -1;
};

/// Per-shard digest of the KV quorum stream (kv_quorum_read/write events,
/// node = shard). The hottest shards head the report's kv_shards list —
/// the trace-level view of where key-popularity skew landed.
struct KvShardSummary {
  int shard = -1;
  std::uint64_t ops = 0;
  /// Ops that completed while the shard was below full replication.
  std::uint64_t degraded_ops = 0;
  double mean_wait_ms = 0.0;
  double max_wait_ms = 0.0;
};

struct CausalChainReport {
  std::vector<EpisodeChain> chains;
  std::vector<VlrtAttribution> vlrt;
  /// KV data-tier activity (empty / zero when the trace has no KV events).
  /// kv_shards is sorted hottest-first by mean quorum wait.
  std::vector<KvShardSummary> kv_shards;
  std::uint64_t kv_handoff_replays = 0;
  std::uint64_t kv_read_repairs = 0;
  std::uint64_t kv_migrations = 0;
  /// Cache-tier activity over the whole trace (zero without a cache tier).
  std::uint64_t cache_hit_events = 0;
  std::uint64_t cache_miss_events = 0;
  std::uint64_t cache_invalidation_events = 0;
  std::uint64_t cache_invalidation_drops = 0;
  std::uint64_t cache_coalesced_events = 0;
  /// Events inspected / per-request joins, for sanity output.
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  /// Overload-control activity over the whole trace (zero without a
  /// configured controller): limiter/CoDel sheds, expired-work sheds, and
  /// AIMD limit adaptations.
  std::uint64_t admission_shed_events = 0;
  std::uint64_t deadline_shed_events = 0;
  std::uint64_t limit_updates = 0;

  std::uint64_t full_chains() const;
  std::uint64_t attributed() const;
  /// Fraction of VLRT requests attributed to a detected episode (0 when the
  /// trace holds no VLRTs).
  double coverage() const;

  void print(std::ostream& os) const;
  void to_json(std::ostream& os) const;
};

/// Joins a chronological event trace into per-episode causal chains and
/// per-VLRT attributions.
class CausalChainAnalyzer {
 public:
  explicit CausalChainAnalyzer(CausalChainConfig config = {})
      : config_(config) {}

  CausalChainReport analyze(const std::vector<obs::TraceEvent>& events) const;

  const CausalChainConfig& config() const { return config_; }

 private:
  CausalChainConfig config_;
};

}  // namespace ntier::millib
