#include "millib/causal_chain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "metrics/time_series.h"

namespace ntier::millib {

const char* to_string(Hop h) {
  switch (h) {
    case Hop::kConnect: return "connect";
    case Hop::kBalancing: return "balancing";
    case Hop::kBackend: return "backend";
    case Hop::kReply: return "reply";
  }
  return "?";
}

namespace {

using obs::EventKind;
using obs::Tier;
using obs::TraceEvent;
using sim::SimTime;

struct Interval {
  SimTime start;
  SimTime end;
  double magnitude = 0.0;
};

bool overlaps(SimTime a0, SimTime a1, SimTime b0, SimTime b1) {
  return a0 <= b1 && b0 <= a1;
}

/// Per-request join state accumulated in one pass over the trace.
struct ReqState {
  SimTime send = SimTime::max();
  SimTime pickup = SimTime::max();
  SimTime acquire = SimTime::max();
  SimTime release = SimTime::max();
  SimTime done = SimTime::max();
  double response_ms = 0.0;
  std::int32_t outcome = -1;
  std::int32_t tomcat = -1;
  std::vector<SimTime> retransmits;
};

}  // namespace

std::uint64_t CausalChainReport::full_chains() const {
  std::uint64_t n = 0;
  for (const auto& c : chains)
    if (c.full_chain()) ++n;
  return n;
}

std::uint64_t CausalChainReport::attributed() const {
  std::uint64_t n = 0;
  for (const auto& v : vlrt)
    if (v.episode >= 0) ++n;
  return n;
}

double CausalChainReport::coverage() const {
  if (vlrt.empty()) return 0.0;
  return static_cast<double>(attributed()) / static_cast<double>(vlrt.size());
}

CausalChainReport CausalChainAnalyzer::analyze(
    const std::vector<TraceEvent>& events) const {
  CausalChainReport report;
  report.events = events.size();

  // ---- pass 1: split the trace into the signals the chain joins -------------
  std::vector<EpisodeChain> chains;
  std::map<std::pair<int, int>, SimTime> open_os;  // (tier,node) -> start
  std::map<std::pair<int, int>, std::vector<std::pair<SimTime, double>>>
      iowait_samples;  // (tier,node) -> samples
  std::map<std::pair<int, int>, std::vector<SimTime>>
      lb_updates;  // (balancer node, worker) -> update times
  std::vector<std::pair<SimTime, std::uint64_t>> retransmits;
  std::vector<SimTime> shed_times;
  // KV quorum completions: (at, shard, wait_ms, degraded).
  struct KvOp {
    SimTime at;
    int shard;
    double wait_ms;
    bool degraded;
  };
  std::vector<KvOp> kv_ops;
  std::vector<SimTime> cache_misses;
  std::unordered_map<std::uint64_t, ReqState> reqs;
  // Committed queue per Tomcat, rebuilt from balancer-side deltas.
  std::map<int, metrics::GaugeSeries> committed;
  std::map<int, int> committed_now;
  SimTime last_event;

  auto committed_delta = [&](int worker, SimTime at, int delta) {
    auto it = committed.find(worker);
    if (it == committed.end())
      it = committed.emplace(worker, metrics::GaugeSeries(config_.window)).first;
    committed_now[worker] += delta;
    it->second.set(at, committed_now[worker]);
  };

  for (const TraceEvent& e : events) {
    last_event = std::max(last_event, e.at);
    switch (e.kind) {
      case EventKind::kPdflushStart:
      case EventKind::kStallStart:
        open_os[{static_cast<int>(e.tier), e.node}] = e.at;
        break;
      case EventKind::kPdflushStop:
      case EventKind::kStallStop: {
        const auto key = std::make_pair(static_cast<int>(e.tier), e.node);
        auto it = open_os.find(key);
        EpisodeChain c;
        c.tier = e.tier;
        c.node = e.node;
        c.synthetic = e.kind == EventKind::kStallStop;
        c.start = it != open_os.end() ? it->second : e.at;
        c.end = e.at;
        c.magnitude = e.value;
        chains.push_back(c);
        if (it != open_os.end()) open_os.erase(it);
        break;
      }
      case EventKind::kIoWait:
        iowait_samples[{static_cast<int>(e.tier), e.node}].emplace_back(e.at,
                                                                        e.value);
        break;
      case EventKind::kLbValue:
        lb_updates[{static_cast<int>(e.node), e.worker}].push_back(e.at);
        break;
      case EventKind::kSynRetransmit:
        retransmits.emplace_back(e.at, e.request);
        reqs[e.request].retransmits.push_back(e.at);
        break;
      case EventKind::kAdmissionShed:
        ++report.admission_shed_events;
        shed_times.push_back(e.at);
        break;
      case EventKind::kDeadlineExpired:
        ++report.deadline_shed_events;
        shed_times.push_back(e.at);
        break;
      case EventKind::kLimitUpdate:
        ++report.limit_updates;
        break;
      case EventKind::kKvQuorumRead:
      case EventKind::kKvQuorumWrite:
        kv_ops.push_back(KvOp{e.at, e.node, e.value, e.aux > 0});
        break;
      case EventKind::kKvHandoffReplay:
        ++report.kv_handoff_replays;
        break;
      case EventKind::kKvReadRepair:
        ++report.kv_read_repairs;
        break;
      case EventKind::kKvMigration:
        if (e.aux > 0) ++report.kv_migrations;  // aux = +1 marks the start
        break;
      case EventKind::kCacheHit:
        ++report.cache_hit_events;
        break;
      case EventKind::kCacheMiss:
        ++report.cache_miss_events;
        cache_misses.push_back(e.at);
        break;
      case EventKind::kCacheInvalidate:
        ++report.cache_invalidation_events;
        if (e.aux < 0) ++report.cache_invalidation_drops;
        break;
      case EventKind::kCacheCoalesced:
        ++report.cache_coalesced_events;
        break;
      case EventKind::kClientSend:
        reqs[e.request].send = std::min(reqs[e.request].send, e.at);
        break;
      case EventKind::kWorkerPickup: {
        auto& r = reqs[e.request];
        r.pickup = std::min(r.pickup, e.at);
        break;
      }
      case EventKind::kGetEndpointAttempt:
        committed_delta(e.worker, e.at, +1);
        break;
      case EventKind::kGetEndpointTimeout:
        committed_delta(e.worker, e.at, -1);
        break;
      case EventKind::kEndpointAcquire: {
        auto& r = reqs[e.request];
        r.acquire = std::min(r.acquire, e.at);
        r.tomcat = e.worker;
        break;
      }
      case EventKind::kEndpointRelease: {
        committed_delta(e.worker, e.at, -1);
        auto& r = reqs[e.request];
        r.release = e.at;  // last release wins (retries)
        break;
      }
      case EventKind::kClientDone: {
        auto& r = reqs[e.request];
        r.done = e.at;
        r.response_ms = e.value;
        r.outcome = e.aux;
        break;
      }
      default:
        break;
    }
  }
  for (auto& [worker, gauge] : committed) gauge.finish(last_event);
  std::sort(chains.begin(), chains.end(),
            [](const EpisodeChain& a, const EpisodeChain& b) {
              return a.start < b.start;
            });

  // ---- derived signals ------------------------------------------------------
  // iowait spike intervals: maximal runs of samples at/above the threshold.
  std::map<std::pair<int, int>, std::vector<Interval>> iowait_spikes;
  for (const auto& [key, samples] : iowait_samples) {
    std::vector<Interval>& out = iowait_spikes[key];
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].second < config_.iowait_threshold) continue;
      Interval iv{samples[i].first, samples[i].first, samples[i].second};
      while (i + 1 < samples.size() &&
             samples[i + 1].second >= config_.iowait_threshold) {
        ++i;
        iv.end = samples[i].first;
        iv.magnitude = std::max(iv.magnitude, samples[i].second);
      }
      out.push_back(iv);
    }
  }
  // Frozen-lb_value intervals: gaps between consecutive updates.
  std::map<std::pair<int, int>, std::vector<Interval>> lb_freezes;
  for (const auto& [key, times] : lb_updates) {
    std::vector<Interval>& out = lb_freezes[key];
    for (std::size_t i = 1; i < times.size(); ++i) {
      const SimTime gap = times[i] - times[i - 1];
      if (gap >= config_.lb_freeze_min)
        out.push_back(Interval{times[i - 1], times[i], gap.to_millis()});
    }
  }
  // Committed-queue spikes, via the shared detector.
  MillibottleneckDetector detector(config_.detector);
  std::map<int, std::vector<SpikeEpisode>> queue_spikes;
  for (const auto& [worker, gauge] : committed)
    queue_spikes[worker] = detector.detect(gauge);

  // ---- join links onto each OS episode --------------------------------------
  const SimTime slack = config_.slack;
  for (EpisodeChain& c : chains) {
    const SimTime lo = c.start - slack;
    const SimTime hi = c.end + slack;

    const auto node_key = std::make_pair(static_cast<int>(c.tier), c.node);
    if (auto it = iowait_spikes.find(node_key); it != iowait_spikes.end()) {
      for (const Interval& iv : it->second) {
        if (!overlaps(iv.start, iv.end, lo, hi)) continue;
        c.iowait.present = true;
        c.iowait.lag_ms = (iv.start - c.start).to_millis();
        c.iowait.magnitude = std::max(c.iowait.magnitude, iv.magnitude);
        ++c.iowait.count;
      }
    }
    // A Tomcat-tier episode freezes that worker's lb_value in *every*
    // balancer; any one frozen copy establishes the link.
    for (const auto& [key, freezes] : lb_freezes) {
      if (c.tier == Tier::kTomcat && key.second != c.node) continue;
      for (const Interval& iv : freezes) {
        if (!overlaps(iv.start, iv.end, lo, hi)) continue;
        if (!c.frozen_lb.present || iv.magnitude > c.frozen_lb.magnitude) {
          c.frozen_lb.lag_ms = (iv.start - c.start).to_millis();
          c.frozen_lb.magnitude = iv.magnitude;
        }
        c.frozen_lb.present = true;
        ++c.frozen_lb.count;
      }
    }
    for (const auto& [worker, spikes] : queue_spikes) {
      if (c.tier == Tier::kTomcat && worker != c.node) continue;
      for (const SpikeEpisode& s : spikes) {
        if (!overlaps(s.start, s.end, lo, hi)) continue;
        if (!c.queue_spike.present || s.peak > c.queue_spike.magnitude) {
          c.queue_spike.lag_ms = (s.start - c.start).to_millis();
          c.queue_spike.magnitude = s.peak;
        }
        c.queue_spike.present = true;
        ++c.queue_spike.count;
      }
    }
    for (const auto& [at, req] : retransmits) {
      if (at < lo || at > hi) continue;
      if (!c.retransmits.present) c.retransmits.lag_ms = (at - c.start).to_millis();
      c.retransmits.present = true;
      ++c.retransmits.count;
      c.retransmits.magnitude = static_cast<double>(c.retransmits.count);
    }
    for (const SimTime at : shed_times) {
      if (at < lo || at > hi) continue;
      if (!c.sheds.present) c.sheds.lag_ms = (at - c.start).to_millis();
      c.sheds.present = true;
      ++c.sheds.count;
      c.sheds.magnitude = static_cast<double>(c.sheds.count);
    }
    // Cache misses during a cache-tier episode: the storm's first
    // downstream hop (invalidations evict the hot keys, reads miss).
    if (c.tier == Tier::kCache) {
      for (const SimTime at : cache_misses) {
        if (at < lo || at > hi) continue;
        if (!c.cache_miss.present)
          c.cache_miss.lag_ms = (at - c.start).to_millis();
        c.cache_miss.present = true;
        ++c.cache_miss.count;
        c.cache_miss.magnitude = static_cast<double>(c.cache_miss.count);
      }
    }
    // Slow quorum completions during a KV-node episode: the hot-shard
    // chain's first downstream hop (node = replica here, shard membership
    // is not in the trace, so any overlapping slow op joins). Cache-tier
    // episodes join too — the storm's miss spike lands on the hot shard.
    if (c.tier == Tier::kKv || c.tier == Tier::kCache) {
      for (const auto& op : kv_ops) {
        if (op.wait_ms < config_.kv_slow_quorum_ms) continue;
        if (op.at < lo || op.at > hi) continue;
        if (!c.kv_quorum.present)
          c.kv_quorum.lag_ms = (op.at - c.start).to_millis();
        c.kv_quorum.present = true;
        ++c.kv_quorum.count;
        c.kv_quorum.magnitude = std::max(c.kv_quorum.magnitude, op.wait_ms);
      }
    }
  }

  // ---- per-shard KV digest --------------------------------------------------
  {
    std::map<int, KvShardSummary> shards;
    for (const auto& op : kv_ops) {
      KvShardSummary& s = shards[op.shard];
      s.shard = op.shard;
      ++s.ops;
      if (op.degraded) ++s.degraded_ops;
      s.mean_wait_ms += op.wait_ms;  // sum; divided below
      s.max_wait_ms = std::max(s.max_wait_ms, op.wait_ms);
    }
    for (auto& [id, s] : shards) {
      s.mean_wait_ms /= static_cast<double>(s.ops);
      report.kv_shards.push_back(s);
    }
    std::sort(report.kv_shards.begin(), report.kv_shards.end(),
              [](const KvShardSummary& a, const KvShardSummary& b) {
                if (a.mean_wait_ms != b.mean_wait_ms)
                  return a.mean_wait_ms > b.mean_wait_ms;
                return a.shard < b.shard;
              });
  }

  // ---- VLRT attribution -----------------------------------------------------
  report.requests = reqs.size();
  std::vector<std::pair<std::uint64_t, const ReqState*>> vlrts;
  for (const auto& [id, r] : reqs) {
    if (r.done == SimTime::max() || r.outcome != 0) continue;  // kOk only
    if (r.response_ms < config_.vlrt_threshold_ms) continue;
    vlrts.emplace_back(id, &r);
  }
  std::sort(vlrts.begin(), vlrts.end());

  for (const auto& [id, rp] : vlrts) {
    const ReqState& r = *rp;
    VlrtAttribution a;
    a.request = id;
    a.response_ms = r.response_ms;
    a.retransmissions = static_cast<std::uint32_t>(r.retransmits.size());
    a.tomcat = r.tomcat;

    const bool picked = r.pickup != SimTime::max();
    const bool acquired = r.acquire != SimTime::max();
    const bool released = r.release != SimTime::max();
    const SimTime pickup = picked ? r.pickup : r.done;
    const SimTime acquire = acquired ? r.acquire : r.done;
    const SimTime release = released ? r.release : r.done;
    a.hop_ms[0] = (pickup - r.send).to_millis();
    a.hop_ms[1] = picked ? (acquire - pickup).to_millis() : 0.0;
    a.hop_ms[2] = acquired ? (release - acquire).to_millis() : 0.0;
    a.hop_ms[3] = released ? (r.done - release).to_millis() : 0.0;
    std::size_t dom = 0;
    for (std::size_t h = 1; h < a.hop_ms.size(); ++h)
      if (a.hop_ms[h] > a.hop_ms[dom]) dom = h;
    a.dominant = static_cast<Hop>(dom);

    for (std::size_t ci = 0; ci < chains.size(); ++ci) {
      EpisodeChain& c = chains[ci];
      const SimTime lo = c.start - slack;
      const SimTime hi = c.end + slack;
      bool match = false;
      for (const SimTime rt : r.retransmits)
        if (rt >= lo && rt <= hi) { match = true; break; }
      // Waiting out the stall inside the front end / balancer / backend.
      if (!match && picked && overlaps(r.send, pickup, lo, hi)) match = true;
      if (!match && picked && acquired && overlaps(pickup, acquire, lo, hi))
        match = true;
      if (!match && acquired && overlaps(acquire, release, lo, hi) &&
          (c.tier != Tier::kTomcat || r.tomcat == c.node))
        match = true;
      if (match) {
        a.episode = static_cast<int>(ci);
        ++c.vlrts;
        break;
      }
    }
    report.vlrt.push_back(a);
  }

  report.chains = std::move(chains);
  return report;
}

// ---- reporting --------------------------------------------------------------

namespace {

void print_link(std::ostream& os, const char* name, const ChainLink& l,
                const char* unit) {
  char buf[160];
  if (l.present)
    std::snprintf(buf, sizeof buf, "    %-18s lag %+8.1f ms   %s %.2f (x%llu)\n",
                  name, l.lag_ms, unit, l.magnitude,
                  static_cast<unsigned long long>(l.count));
  else
    std::snprintf(buf, sizeof buf, "    %-18s (not observed)\n", name);
  os << buf;
}

}  // namespace

void CausalChainReport::print(std::ostream& os) const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "causal-chain report: %llu events, %llu requests, %zu OS "
                "episodes (%llu full chains)\n",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(requests), chains.size(),
                static_cast<unsigned long long>(full_chains()));
  os << buf;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const EpisodeChain& c = chains[i];
    std::snprintf(buf, sizeof buf, "  [%zu] %s %s%d %.3fs-%.3fs (%.0f ms) %s\n",
                  i, c.synthetic ? "stall" : "pdflush", obs::to_string(c.tier),
                  c.node, c.start.to_seconds(), c.end.to_seconds(),
                  (c.end - c.start).to_millis(),
                  c.full_chain() ? "FULL CHAIN" : "partial");
    os << buf;
    print_link(os, "iowait spike", c.iowait, "peak");
    print_link(os, "frozen lb_value", c.frozen_lb, "gap_ms");
    print_link(os, "queue spike", c.queue_spike, "peak");
    print_link(os, "syn retransmits", c.retransmits, "count");
    if (c.sheds.present) print_link(os, "overload sheds", c.sheds, "count");
    if (c.tier == obs::Tier::kKv || c.tier == obs::Tier::kCache)
      print_link(os, "slow kv quorum", c.kv_quorum, "max_ms");
    if (c.tier == obs::Tier::kCache)
      print_link(os, "cache miss spike", c.cache_miss, "count");
    std::snprintf(buf, sizeof buf, "    %-18s %llu attributed\n", "vlrts",
                  static_cast<unsigned long long>(c.vlrts));
    os << buf;
  }
  if (!kv_shards.empty()) {
    std::snprintf(buf, sizeof buf,
                  "kv tier: %zu shards active, %llu handoff replays, %llu "
                  "read repairs, %llu migrations; hottest shards:\n",
                  kv_shards.size(),
                  static_cast<unsigned long long>(kv_handoff_replays),
                  static_cast<unsigned long long>(kv_read_repairs),
                  static_cast<unsigned long long>(kv_migrations));
    os << buf;
    const std::size_t top = std::min<std::size_t>(3, kv_shards.size());
    for (std::size_t i = 0; i < top; ++i) {
      const KvShardSummary& s = kv_shards[i];
      std::snprintf(buf, sizeof buf,
                    "  shard %-3d %8llu ops, mean wait %8.2f ms, max %8.2f "
                    "ms, %llu degraded\n",
                    s.shard, static_cast<unsigned long long>(s.ops),
                    s.mean_wait_ms, s.max_wait_ms,
                    static_cast<unsigned long long>(s.degraded_ops));
      os << buf;
    }
  }
  if (cache_hit_events || cache_miss_events || cache_invalidation_events) {
    std::snprintf(buf, sizeof buf,
                  "cache tier: %llu hits, %llu misses, %llu invalidations "
                  "(%llu dropped), %llu coalesced fills\n",
                  static_cast<unsigned long long>(cache_hit_events),
                  static_cast<unsigned long long>(cache_miss_events),
                  static_cast<unsigned long long>(cache_invalidation_events),
                  static_cast<unsigned long long>(cache_invalidation_drops),
                  static_cast<unsigned long long>(cache_coalesced_events));
    os << buf;
  }
  if (admission_shed_events || deadline_shed_events || limit_updates) {
    std::snprintf(buf, sizeof buf,
                  "overload control: %llu admission sheds, %llu expired-work "
                  "sheds, %llu limit updates\n",
                  static_cast<unsigned long long>(admission_shed_events),
                  static_cast<unsigned long long>(deadline_shed_events),
                  static_cast<unsigned long long>(limit_updates));
    os << buf;
  }
  std::array<std::uint64_t, 4> by_hop{};
  for (const auto& v : vlrt) by_hop[static_cast<std::size_t>(v.dominant)]++;
  std::snprintf(buf, sizeof buf,
                "VLRT attribution: %llu/%zu explained (%.1f%% coverage)\n",
                static_cast<unsigned long long>(attributed()), vlrt.size(),
                100.0 * coverage());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  dominant hop: connect %llu, balancing %llu, backend %llu, "
                "reply %llu\n",
                static_cast<unsigned long long>(by_hop[0]),
                static_cast<unsigned long long>(by_hop[1]),
                static_cast<unsigned long long>(by_hop[2]),
                static_cast<unsigned long long>(by_hop[3]));
  os << buf;
}

namespace {

void json_link(std::ostream& os, const char* name, const ChainLink& l,
               bool trailing_comma = true) {
  os << "\"" << name << "\":{\"present\":" << (l.present ? "true" : "false")
     << ",\"lag_ms\":" << l.lag_ms << ",\"magnitude\":" << l.magnitude
     << ",\"count\":" << l.count << "}";
  if (trailing_comma) os << ",";
}

}  // namespace

void CausalChainReport::to_json(std::ostream& os) const {
  os << "{\"events\":" << events << ",\"requests\":" << requests
     << ",\"full_chains\":" << full_chains()
     << ",\"coverage\":" << coverage()
     << ",\"admission_shed_events\":" << admission_shed_events
     << ",\"deadline_shed_events\":" << deadline_shed_events
     << ",\"limit_updates\":" << limit_updates << ",\"episodes\":[";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const EpisodeChain& c = chains[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << (c.synthetic ? "stall" : "pdflush")
       << "\",\"tier\":\"" << obs::to_string(c.tier)
       << "\",\"node\":" << c.node << ",\"start_s\":" << c.start.to_seconds()
       << ",\"end_s\":" << c.end.to_seconds()
       << ",\"magnitude\":" << c.magnitude
       << ",\"full_chain\":" << (c.full_chain() ? "true" : "false") << ",";
    json_link(os, "iowait", c.iowait);
    json_link(os, "frozen_lb", c.frozen_lb);
    json_link(os, "queue_spike", c.queue_spike);
    json_link(os, "retransmits", c.retransmits);
    json_link(os, "sheds", c.sheds);
    json_link(os, "kv_quorum", c.kv_quorum);
    json_link(os, "cache_miss", c.cache_miss);
    os << "\"vlrts\":" << c.vlrts << "}";
  }
  os << "],\"kv\":{\"handoff_replays\":" << kv_handoff_replays
     << ",\"read_repairs\":" << kv_read_repairs
     << ",\"migrations\":" << kv_migrations << ",\"shards\":[";
  for (std::size_t i = 0; i < kv_shards.size(); ++i) {
    const KvShardSummary& s = kv_shards[i];
    if (i) os << ",";
    os << "{\"shard\":" << s.shard << ",\"ops\":" << s.ops
       << ",\"degraded_ops\":" << s.degraded_ops
       << ",\"mean_wait_ms\":" << s.mean_wait_ms
       << ",\"max_wait_ms\":" << s.max_wait_ms << "}";
  }
  os << "]},\"cache\":{\"hits\":" << cache_hit_events
     << ",\"misses\":" << cache_miss_events
     << ",\"invalidations\":" << cache_invalidation_events
     << ",\"invalidation_drops\":" << cache_invalidation_drops
     << ",\"coalesced\":" << cache_coalesced_events << "},\"vlrt\":[";
  for (std::size_t i = 0; i < vlrt.size(); ++i) {
    const VlrtAttribution& v = vlrt[i];
    if (i) os << ",";
    os << "{\"req\":" << v.request << ",\"response_ms\":" << v.response_ms
       << ",\"episode\":" << v.episode << ",\"dominant\":\""
       << to_string(v.dominant) << "\",\"hops_ms\":[" << v.hop_ms[0] << ","
       << v.hop_ms[1] << "," << v.hop_ms[2] << "," << v.hop_ms[3]
       << "],\"retransmissions\":" << v.retransmissions
       << ",\"tomcat\":" << v.tomcat << "}";
  }
  os << "]}\n";
}

}  // namespace ntier::millib
