#include "millib/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/rng.h"

namespace ntier::millib {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCapacityStall: return "capacity_stall";
    case FaultKind::kCorrelatedStall: return "correlated_stall";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kLinkFault: return "link_fault";
    case FaultKind::kPoolLeak: return "pool_leak";
    case FaultKind::kDiskDegrade: return "disk_degrade";
    case FaultKind::kReplicaCrash: return "replica_crash";
    case FaultKind::kShardMigration: return "shard_migration";
    case FaultKind::kInvalidationStorm: return "invalidation_storm";
    case FaultKind::kGrayDataPath: return "gray_data_path";
    case FaultKind::kGrayLink: return "gray_link";
    case FaultKind::kGraySlowReplica: return "gray_slow_replica";
  }
  return "?";
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << millib::to_string(kind) << " worker=" << worker << " start="
     << start.to_string() << " duration=" << duration.to_string();
  switch (kind) {
    case FaultKind::kCapacityStall:
    case FaultKind::kCorrelatedStall:
    case FaultKind::kDiskDegrade:
      os << " severity=" << severity;
      break;
    case FaultKind::kLinkFault:
      os << " extra_latency=" << extra_latency.to_string()
         << " loss=" << loss_probability;
      break;
    case FaultKind::kPoolLeak:
      os << " leak_slots=" << leak_slots;
      break;
    case FaultKind::kShardMigration:
      os << " severity=" << severity;  // migration copy intensity
      break;
    case FaultKind::kInvalidationStorm:
      os << " severity=" << severity;  // hot-key sweep width multiplier
      break;
    case FaultKind::kGrayDataPath:
    case FaultKind::kGraySlowReplica:
      os << " severity=" << severity;  // slowdown = 1/(1-severity)
      break;
    case FaultKind::kGrayLink:
      os << " extra_latency=" << extra_latency.to_string()
         << " loss=" << loss_probability;
      break;
    case FaultKind::kCrash:
    case FaultKind::kReplicaCrash:
      break;
  }
  return os.str();
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  specs.insert(specs.end(), other.specs.begin(), other.specs.end());
  std::stable_sort(specs.begin(), specs.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.start < b.start;
                   });
  return *this;
}

FaultPlan FaultPlan::randomized(std::uint64_t seed,
                                const FaultPlanConfig& config,
                                int num_workers) {
  if (num_workers <= 0)
    throw std::invalid_argument("FaultPlan: num_workers must be positive");
  constexpr std::size_t kNumKinds = 12;
  if (config.kind_weights.size() != kNumKinds)
    throw std::invalid_argument("FaultPlan: kind_weights must have 12 entries");

  sim::Rng rng(seed);
  FaultPlan plan;
  sim::SimTime t = config.initial_offset;
  while (t < config.horizon && plan.specs.size() < config.max_faults) {
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(rng.weighted_index(config.kind_weights));
    spec.start = t;
    spec.duration = sim::SimTime::from_seconds(
        rng.uniform(config.min_duration.to_seconds(),
                    config.max_duration.to_seconds()));
    spec.severity = rng.uniform(config.min_severity, config.max_severity);
    spec.worker = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_workers) - 1));
    switch (spec.kind) {
      case FaultKind::kCorrelatedStall:
      case FaultKind::kLinkFault:
        spec.worker = -1;
        break;
      default:
        break;
    }
    if (spec.kind == FaultKind::kLinkFault ||
        spec.kind == FaultKind::kGrayLink) {
      spec.extra_latency = sim::SimTime::from_seconds(
          rng.uniform(0.0, config.max_extra_latency.to_seconds()));
      spec.loss_probability = rng.uniform(0.05, config.max_loss_probability);
    }
    if (spec.kind == FaultKind::kPoolLeak) spec.leak_slots = config.leak_slots;
    plan.specs.push_back(spec);
    t += rng.exponential_time(config.mean_gap);
  }
  return plan;
}

FaultPlan FaultPlan::periodic_stalls(int worker, sim::SimTime period,
                                     sim::SimTime duration, double severity,
                                     sim::SimTime initial_offset,
                                     sim::SimTime horizon) {
  FaultPlan plan;
  for (sim::SimTime t = initial_offset; t < horizon; t += period) {
    FaultSpec spec;
    spec.kind = FaultKind::kCapacityStall;
    spec.worker = worker;
    spec.start = t;
    spec.duration = duration;
    spec.severity = severity;
    plan.specs.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::single(FaultSpec spec) {
  FaultPlan plan;
  plan.specs.push_back(spec);
  return plan;
}

std::string FaultPlan::trace_string() const {
  std::ostringstream os;
  for (const auto& spec : specs) os << spec.to_string() << '\n';
  return os.str();
}

}  // namespace ntier::millib
