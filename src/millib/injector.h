#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "os/cpu.h"
#include "sim/simulation.h"

namespace ntier::millib {

/// A transient capacity stall injected into a CPU — the generic form of a
/// millibottleneck. The organic cause in the paper is pdflush (modelled in
/// src/os); these injectors reproduce the *other* documented causes (§III-A:
/// JVM garbage collection, DVFS, VM consolidation) for extension studies and
/// fault-injection tests.
struct StallEpisode {
  sim::SimTime start;
  sim::SimTime end;
  double severity = 0;  // fraction of capacity removed
};

struct InjectorConfig {
  /// Mean interval between stalls (exponential when jitter=true, fixed
  /// otherwise).
  sim::SimTime period = sim::SimTime::seconds(5);
  bool jitter = false;
  /// Stall length.
  sim::SimTime duration = sim::SimTime::millis(150);
  /// Capacity removed while stalled (1.0 = full freeze).
  double severity = 1.0;
  /// First stall time offset.
  sim::SimTime initial_offset = sim::SimTime::seconds(5);
  /// Stop after this many stalls (0 = unbounded).
  std::uint64_t max_episodes = 0;
};

/// Periodically steals capacity from a CpuResource and restores it.
class CapacityStallInjector {
 public:
  CapacityStallInjector(sim::Simulation& simu, os::CpuResource& cpu,
                        InjectorConfig config, std::string name = "injector");

  CapacityStallInjector(const CapacityStallInjector&) = delete;
  CapacityStallInjector& operator=(const CapacityStallInjector&) = delete;

  const std::vector<StallEpisode>& episodes() const { return episodes_; }
  const std::string& name() const { return name_; }
  bool stalled() const { return stalled_; }

  /// Attach the cross-tier event collector (null disables). Stalls are
  /// emitted as stall_start/stall_stop with value = severity.
  void set_trace(obs::TraceCollector* trace, obs::Tier tier, int node) {
    trace_events_ = trace;
    trace_tier_ = tier;
    trace_node_ = node;
  }

 private:
  void arm();
  void begin_stall();

  sim::Simulation& sim_;
  os::CpuResource& cpu_;
  InjectorConfig config_;
  std::string name_;
  sim::Rng rng_;
  bool stalled_ = false;
  double saved_factor_ = 1.0;
  obs::TraceCollector* trace_events_ = nullptr;
  obs::Tier trace_tier_ = obs::Tier::kTomcat;
  int trace_node_ = -1;
  std::vector<StallEpisode> episodes_;
};

/// JVM stop-the-world garbage collection: ~full freeze for tens of ms.
InjectorConfig gc_pause_profile(sim::SimTime period = sim::SimTime::seconds(4),
                                sim::SimTime pause = sim::SimTime::millis(80));

/// DVFS frequency-step transition: partial slowdown, short and frequent.
InjectorConfig dvfs_profile(sim::SimTime period = sim::SimTime::seconds(2),
                            sim::SimTime dip = sim::SimTime::millis(60),
                            double severity = 0.5);

/// VM consolidation interference: longer, moderate capacity loss, jittered.
InjectorConfig vm_consolidation_profile(
    sim::SimTime period = sim::SimTime::seconds(10),
    sim::SimTime span = sim::SimTime::millis(400), double severity = 0.6);

}  // namespace ntier::millib
