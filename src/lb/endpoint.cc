#include "lb/endpoint.h"

#include <stdexcept>

namespace ntier::lb {

std::string to_string(MechanismKind k) {
  switch (k) {
    case MechanismKind::kBlocking: return "blocking_get_endpoint";
    case MechanismKind::kNonBlocking: return "modified_get_endpoint";
    case MechanismKind::kQueueing: return "queueing_pool";
  }
  return "?";
}

void BlockingAcquirer::acquire(sim::Simulation& simu, EndpointPool& pool,
                               const WorkerRecord& rec,
                               std::function<void(bool)> done) {
  // Algorithm 1: with retry counted in units of JK_SLEEP_DEF, polls happen
  // at t = 0, S, 2S, ... while retry*S < timeout; then the call fails.
  struct PollState {
    sim::Simulation& simu;
    EndpointPool& pool;
    Params params;
    std::function<void(bool)> done;
    sim::SimTime waited;
  };
  auto st = std::make_shared<PollState>(
      PollState{simu, pool, params_, std::move(done), sim::SimTime::zero()});
  (void)rec;

  // Exact Algorithm-1 sequencing: a failed check is always followed by a
  // sleep; the loop condition (retry * JK_SLEEP_DEF < timeout) is evaluated
  // on wake-up. With the defaults this checks at 0/100/200 ms and reports
  // failure at 300 ms.
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [st, poll] {
    if (st->pool.try_acquire()) {
      st->done(true);
      return;
    }
    st->waited += st->params.sleep_interval;
    st->simu.after(st->params.sleep_interval, [st, poll] {
      if (st->waited >= st->params.acquire_timeout)
        st->done(false);
      else
        (*poll)();
    });
  };
  (*poll)();
}

void NonBlockingAcquirer::acquire(sim::Simulation&, EndpointPool& pool,
                                  const WorkerRecord&,
                                  std::function<void(bool)> done) {
  done(pool.try_acquire());
}

void QueueingAcquirer::acquire(sim::Simulation&, EndpointPool& pool,
                               const WorkerRecord&,
                               std::function<void(bool)> done) {
  pool.acquire_or_wait([done = std::move(done)] { done(true); });
}

std::unique_ptr<EndpointAcquirer> make_acquirer(MechanismKind kind,
                                                BlockingAcquirer::Params params) {
  switch (kind) {
    case MechanismKind::kBlocking:
      return std::make_unique<BlockingAcquirer>(params);
    case MechanismKind::kNonBlocking:
      return std::make_unique<NonBlockingAcquirer>();
    case MechanismKind::kQueueing:
      return std::make_unique<QueueingAcquirer>();
  }
  throw std::invalid_argument("make_acquirer: unknown kind");
}

}  // namespace ntier::lb
