#include "lb/endpoint.h"

#include <stdexcept>

namespace ntier::lb {

std::string to_string(MechanismKind k) {
  switch (k) {
    case MechanismKind::kBlocking: return "blocking_get_endpoint";
    case MechanismKind::kNonBlocking: return "modified_get_endpoint";
    case MechanismKind::kQueueing: return "queueing_pool";
  }
  return "?";
}

namespace {

// Algorithm 1: with retry counted in units of JK_SLEEP_DEF, polls happen
// at t = 0, S, 2S, ... while retry*S < timeout; then the call fails.
struct PollState {
  sim::Simulation& simu;
  EndpointPool& pool;
  BlockingAcquirer::Params params;
  std::function<void(bool)> done;
  sim::SimTime waited;
  EndpointAcquirer::TraceContext trace;
};

// Exact Algorithm-1 sequencing: a failed check is always followed by a
// sleep; the loop condition (retry * JK_SLEEP_DEF < timeout) is evaluated
// on wake-up. With the defaults this checks at 0/100/200 ms and reports
// failure at 300 ms. A free function (rather than a self-capturing closure
// in a shared_ptr<function>) so the recursion holds no reference cycle:
// the only owner of the state is the pending wake-up event.
void poll_step(const std::shared_ptr<PollState>& st) {
  if (st->pool.try_acquire()) {
    st->done(true);
    return;
  }
  // The initial failed check is covered by the balancer's attempt event;
  // wake-up re-checks are the 100 ms sleeps the worker thread spends parked.
  if (st->waited > sim::SimTime::zero())
    NTIER_TRACE_EVENT(st->trace.trace, st->simu.now(),
                      obs::EventKind::kGetEndpointPoll, obs::Tier::kBalancer,
                      st->trace.node, st->trace.worker, st->trace.request,
                      st->waited.to_millis());
  st->waited += st->params.sleep_interval;
  st->simu.after(st->params.sleep_interval, [st] {
    if (st->waited >= st->params.acquire_timeout)
      st->done(false);
    else
      poll_step(st);
  });
}

}  // namespace

void BlockingAcquirer::acquire(sim::Simulation& simu, EndpointPool& pool,
                               const WorkerRecord& rec,
                               std::function<void(bool)> done) {
  (void)rec;
  poll_step(std::make_shared<PollState>(PollState{
      simu, pool, params_, std::move(done), sim::SimTime::zero(), trace_ctx_}));
}

void NonBlockingAcquirer::acquire(sim::Simulation&, EndpointPool& pool,
                                  const WorkerRecord&,
                                  std::function<void(bool)> done) {
  done(pool.try_acquire());
}

void QueueingAcquirer::acquire(sim::Simulation& simu, EndpointPool& pool,
                               const WorkerRecord&,
                               std::function<void(bool)> done) {
  if (params_.wait_timeout <= sim::SimTime::zero()) {
    pool.acquire_or_wait([done = std::move(done)](bool ok) { done(ok); });
    return;
  }
  // Bounded wait: whichever of {grant/drain, timeout} fires first settles
  // the acquisition; the timeout *cancels* the waiter so a later release
  // cannot hand a slot to a caller that already gave up (that slot would
  // never be returned).
  struct WaitState {
    bool settled = false;
    EndpointPool::WaiterId id = 0;
  };
  auto st = std::make_shared<WaitState>();
  const auto id = pool.acquire_or_wait([st, done](bool ok) {
    st->settled = true;
    done(ok);
  });
  if (st->settled) return;  // granted (or drained) synchronously
  st->id = id;
  simu.after(params_.wait_timeout, [st, &pool, done] {
    if (st->settled) return;
    if (pool.cancel_waiter(st->id)) {
      st->settled = true;
      done(false);
    }
  });
}

std::unique_ptr<EndpointAcquirer> make_acquirer(
    MechanismKind kind, BlockingAcquirer::Params params,
    QueueingAcquirer::Params queueing_params) {
  switch (kind) {
    case MechanismKind::kBlocking:
      return std::make_unique<BlockingAcquirer>(params);
    case MechanismKind::kNonBlocking:
      return std::make_unique<NonBlockingAcquirer>();
    case MechanismKind::kQueueing:
      return std::make_unique<QueueingAcquirer>(queueing_params);
  }
  throw std::invalid_argument("make_acquirer: unknown kind");
}

}  // namespace ntier::lb
