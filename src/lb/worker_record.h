#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ntier::lb {

/// The 3-state model mod_jk assumes for each backend (paper §IV-A).
/// The paper's point is that a server inside a millibottleneck fits none of
/// these: it is *unavailable* for tens–hundreds of ms yet the balancer keeps
/// it Available.
enum class WorkerState : std::uint8_t {
  kAvailable,  // able to process requests
  kBusy,       // all connections in use; retried after a recovery interval
  kError,      // deemed failed; retried after a (much longer) interval
};

std::string to_string(WorkerState s);

/// Per-backend bookkeeping held by one balancer instance (one per Apache,
/// as in mod_jk — the four Apaches each keep their own lb_values).
struct WorkerRecord {
  int tomcat_id = -1;

  WorkerState state = WorkerState::kAvailable;
  /// When a Busy/Error worker becomes eligible again (lazy recovery).
  sim::SimTime state_until;
  /// Consecutive endpoint-acquisition failures; escalates Busy -> Error.
  int consecutive_failures = 0;

  /// The policy-maintained ranking value; lowest-ranked Available worker is
  /// picked (mod_jk's normalised lb_value).
  double lb_value = 0;

  /// mod_jk lbfactor: a weight-2 worker should receive twice the traffic of
  /// a weight-1 worker. Policies normalise their lb_value increments by
  /// this factor, exactly like mod_jk's lb_mult scaling.
  double weight = 1.0;

  // -- probe-driven health (lb/health.h) -------------------------------------
  /// EWMA of probe outcomes in [0, 1]; 1.0 = every recent probe succeeded.
  double health = 1.0;
  /// RTT of the most recent probe (timed-out probes report the timeout).
  double probe_rtt_ms = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  /// Circuit breaker: while open the worker is out of rotation regardless of
  /// its mod_jk state; half_open_left > 0 admits trial requests.
  bool breaker_open = false;
  sim::SimTime breaker_until;
  int half_open_left = 0;
  std::uint64_t breaker_trips = 0;
  /// Flap hysteresis: a trip within BreakerConfig::flap_window of the last
  /// one escalates the open dwell (gray faults pass probes, fail data).
  sim::SimTime breaker_last_trip;
  int flap_streak = 0;              // consecutive trips inside flap_window
  std::uint64_t breaker_flaps = 0;  // trips that counted as flaps
  /// Consecutive ok probes observed while open (readmission gate).
  int open_ok_streak = 0;

  // -- statistics ------------------------------------------------------------
  std::uint64_t assigned = 0;    // endpoint acquired & request sent
  std::uint64_t completed = 0;   // responses received
  std::uint64_t acquire_failures = 0;
  /// Requests sent and not yet answered.
  int outstanding = 0;
  /// Requests *committed* to this backend: selected as candidate and not yet
  /// answered (includes workers still blocked inside get_endpoint). This is
  /// the quantity the paper plots as the per-Tomcat queue: under the
  /// blocking mechanism it climbs far beyond `outstanding`.
  int committed = 0;
};

}  // namespace ntier::lb
