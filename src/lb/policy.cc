#include "lb/policy.h"

#include <stdexcept>

#include "lb/probe_policy.h"

namespace ntier::lb {

std::string to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kTotalRequest: return "total_request";
    case PolicyKind::kTotalTraffic: return "total_traffic";
    case PolicyKind::kCurrentLoad: return "current_load";
    case PolicyKind::kSessions: return "sessions";
    case PolicyKind::kRoundRobin: return "round_robin";
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kTwoChoices: return "two_choices";
    case PolicyKind::kPowerOfD: return "power_of_d";
    case PolicyKind::kPrequal: return "prequal";
    case PolicyKind::kSourceHash: return "source_hash";
  }
  return "?";
}

std::optional<PolicyKind> policy_from_string(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(PolicyKind::kSourceHash); ++k) {
    const auto kind = static_cast<PolicyKind>(k);
    if (name == to_string(kind)) return kind;
  }
  if (name == "po2d") return PolicyKind::kPowerOfD;
  return std::nullopt;
}

bool policy_uses_probes(PolicyKind k) {
  return k == PolicyKind::kPowerOfD || k == PolicyKind::kPrequal;
}

int LbPolicy::pick(const std::vector<WorkerRecord>& records,
                   const std::vector<int>& eligible, sim::Rng&) {
  int best = -1;
  double best_value = 0;
  for (int idx : eligible) {
    const double v = records[static_cast<std::size_t>(idx)].lb_value;
    if (best < 0 || v < best_value) {  // strict <: first minimum wins, as in mod_jk
      best = idx;
      best_value = v;
    }
  }
  return best;
}

int RoundRobinPolicy::pick(const std::vector<WorkerRecord>&,
                           const std::vector<int>& eligible, sim::Rng&) {
  if (eligible.empty()) return -1;
  return eligible[next_++ % eligible.size()];
}

int RandomPolicy::pick(const std::vector<WorkerRecord>&,
                       const std::vector<int>& eligible, sim::Rng& rng) {
  if (eligible.empty()) return -1;
  return eligible[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1))];
}

int TwoChoicesPolicy::pick(const std::vector<WorkerRecord>& records,
                           const std::vector<int>& eligible, sim::Rng& rng) {
  if (eligible.empty()) return -1;
  if (eligible.size() == 1) return eligible[0];
  const auto n = static_cast<std::int64_t>(eligible.size());
  const int a = eligible[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
  int b = a;
  while (b == a)
    b = eligible[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
  const auto& ra = records[static_cast<std::size_t>(a)];
  const auto& rb = records[static_cast<std::size_t>(b)];
  return ra.outstanding <= rb.outstanding ? a : b;
}

int SourceHashPolicy::pick_for(const std::vector<WorkerRecord>& records,
                               const std::vector<int>& eligible, sim::Rng&,
                               const proto::Request& req) {
  if (eligible.empty()) return -1;
  // Hash the client over ALL workers first so affinity is stable regardless
  // of who happens to be eligible this instant...
  const std::uint64_t h = sim::Rng::mix64(static_cast<std::uint64_t>(req.client) + 1);
  const int preferred = static_cast<int>(h % records.size());
  for (int idx : eligible)
    if (idx == preferred) return preferred;
  // ...and only rehash over the eligible set when the preferred worker is
  // sidelined (breaker open, being retried, etc.).
  return eligible[static_cast<std::size_t>((h >> 17) % eligible.size())];
}

std::unique_ptr<LbPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTotalRequest: return std::make_unique<TotalRequestPolicy>();
    case PolicyKind::kTotalTraffic: return std::make_unique<TotalTrafficPolicy>();
    case PolicyKind::kCurrentLoad: return std::make_unique<CurrentLoadPolicy>();
    case PolicyKind::kSessions: return std::make_unique<SessionsPolicy>();
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>();
    case PolicyKind::kTwoChoices: return std::make_unique<TwoChoicesPolicy>();
    case PolicyKind::kPowerOfD: return std::make_unique<PowerOfDPolicy>();
    case PolicyKind::kPrequal: return std::make_unique<PrequalPolicy>();
    case PolicyKind::kSourceHash: return std::make_unique<SourceHashPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace ntier::lb
