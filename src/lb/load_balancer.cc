#include "lb/load_balancer.h"

#include <algorithm>
#include <cassert>

#include "lb/probe_policy.h"

namespace ntier::lb {

bool LoadBalancer::attach_probes(probe::ProbePool* pool) {
  auto* aware = dynamic_cast<ProbeAwarePolicy*>(policy_.get());
  if (aware == nullptr) return false;
  aware->bind(pool);
  return true;
}

struct LoadBalancer::AssignContext {
  proto::RequestPtr req;
  std::function<void(int)> done;
  std::vector<bool> attempted;  // per worker index
};

LoadBalancer::LoadBalancer(sim::Simulation& simu, int num_workers,
                           std::unique_ptr<LbPolicy> policy,
                           std::unique_ptr<EndpointAcquirer> acquirer,
                           BalancerConfig config)
    : sim_(simu),
      policy_(std::move(policy)),
      acquirer_(std::move(acquirer)),
      config_(config),
      rng_(simu.rng().fork()) {
  if (!config_.worker_weights.empty() &&
      config_.worker_weights.size() != static_cast<std::size_t>(num_workers))
    throw std::invalid_argument("BalancerConfig: worker_weights size mismatch");
  records_.resize(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    auto& rec = records_[static_cast<std::size_t>(i)];
    rec.tomcat_id = i;
    if (!config_.worker_weights.empty()) {
      rec.weight = config_.worker_weights[static_cast<std::size_t>(i)];
      if (rec.weight <= 0)
        throw std::invalid_argument("BalancerConfig: non-positive weight");
    }
  }
  pools_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    pools_.emplace_back(config_.endpoint_pool_size);
  if (config_.decay_interval > sim::SimTime::zero()) {
    if (config_.decay_divisor <= 1.0)
      throw std::invalid_argument("BalancerConfig: decay_divisor must be > 1");
    arm_decay();
  }
}

void LoadBalancer::arm_decay() {
  sim_.after(config_.decay_interval, [this] {
    decay_now();
    arm_decay();
  });
}

void LoadBalancer::decay_now() {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    records_[i].lb_value /= config_.decay_divisor;
    trace_lb_value(static_cast<int>(i));
  }
}

void LoadBalancer::enable_tracing(sim::SimTime window) {
  lb_value_traces_.clear();
  committed_traces_.clear();
  assignment_traces_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    lb_value_traces_.emplace_back(window);
    committed_traces_.emplace_back(window);
    assignment_traces_.emplace_back(window);
  }
}

void LoadBalancer::finish_traces() {
  for (auto& g : lb_value_traces_) g.finish(sim_.now());
  for (auto& g : committed_traces_) g.finish(sim_.now());
}

void LoadBalancer::trace_event([[maybe_unused]] obs::EventKind kind,
                               [[maybe_unused]] int worker,
                               [[maybe_unused]] std::uint64_t request,
                               [[maybe_unused]] double value,
                               [[maybe_unused]] std::int32_t aux) {
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), kind, obs::Tier::kBalancer,
                    trace_node_, worker, request, value, aux);
}

void LoadBalancer::trace_lb_value(int idx) {
  trace_event(obs::EventKind::kLbValue, idx, 0,
              records_[static_cast<std::size_t>(idx)].lb_value);
  if (lb_value_traces_.empty()) return;
  lb_value_traces_[static_cast<std::size_t>(idx)].set(
      sim_.now(), records_[static_cast<std::size_t>(idx)].lb_value);
}

void LoadBalancer::set_committed(int idx, int delta) {
  auto& rec = records_[static_cast<std::size_t>(idx)];
  rec.committed += delta;
  assert(rec.committed >= 0);
  if (!committed_traces_.empty())
    committed_traces_[static_cast<std::size_t>(idx)].set(sim_.now(),
                                                         rec.committed);
}

bool LoadBalancer::eligible(WorkerRecord& rec) {
  // An open breaker overrides the mod_jk state machine entirely: the worker
  // only re-enters rotation through report_probe's half-open transition.
  if (rec.breaker_open) return false;
  switch (rec.state) {
    case WorkerState::kAvailable:
      return true;
    case WorkerState::kBusy:
      if (sim_.now() >= rec.state_until) {
        rec.state = WorkerState::kAvailable;  // lazy Busy recovery
        return true;
      }
      return false;
    case WorkerState::kError:
      if (sim_.now() >= rec.state_until) {
        rec.state = WorkerState::kAvailable;  // mod_jk `retry` elapsed
        rec.consecutive_failures = 0;
        return true;
      }
      return false;
  }
  return false;
}

void LoadBalancer::open_breaker(WorkerRecord& rec) {
  const auto& bc = config_.breaker;
  // Flap hysteresis: a re-trip hot on the heels of the previous one means
  // the worker passed its readmission checks and failed again on the data
  // path — hold it out exponentially longer each time.
  if (rec.breaker_trips > 0 &&
      sim_.now() <= rec.breaker_last_trip + bc.flap_window) {
    rec.flap_streak = std::min(rec.flap_streak + 1, bc.max_flap_backoff);
    ++rec.breaker_flaps;
  } else {
    rec.flap_streak = 0;
  }
  rec.breaker_last_trip = sim_.now();
  sim::SimTime dwell = bc.open_duration;
  for (int k = 0; k < rec.flap_streak; ++k) dwell = dwell + dwell;
  rec.breaker_open = true;
  rec.breaker_until = sim_.now() + dwell;
  rec.half_open_left = 0;
  rec.open_ok_streak = 0;
  ++rec.breaker_trips;
}

void LoadBalancer::mark_failure(WorkerRecord& rec) {
  ++rec.acquire_failures;
  // A failed trial request while half-open re-opens the breaker immediately:
  // the worker claimed recovery and could not back it up.
  if (config_.breaker.enabled && rec.half_open_left > 0) {
    open_breaker(rec);
    trace_event(obs::EventKind::kBreakerState, rec.tomcat_id, 0, 1.0,
                /*aux=*/1);  // re-opened from half-open
  }
  // Concurrent waiters that started polling before the worker was sidelined
  // all fail around the same instant; only the first of them escalates the
  // state (mod_jk marks the worker once, the rest just observe it Busy).
  if ((rec.state == WorkerState::kBusy || rec.state == WorkerState::kError) &&
      sim_.now() < rec.state_until)
    return;
  ++rec.consecutive_failures;
  if (rec.consecutive_failures >= config_.failures_to_error) {
    rec.state = WorkerState::kError;
    rec.state_until = sim_.now() + config_.error_recovery;
  } else {
    rec.state = WorkerState::kBusy;
    rec.state_until = sim_.now() + config_.busy_recovery;
  }
}

void LoadBalancer::try_next(const std::shared_ptr<AssignContext>& ctx) {
  int idx = -1;
  // Sticky routing first: a request that carries a session route goes back
  // to its owner whenever that worker is eligible and not yet attempted.
  const int route = ctx->req->session_route;
  if (config_.sticky_sessions && route >= 0 && route < num_workers()) {
    auto& owner = records_[static_cast<std::size_t>(route)];
    if (!ctx->attempted[static_cast<std::size_t>(route)] && eligible(owner)) {
      idx = route;
      ++sticky_hits_;
    } else if (config_.sticky_force) {
      ++balancer_errors_;  // mod_jk sticky_session_force: no fallback
      ctx->done(-1);
      return;
    }
  }
  if (idx < 0) {
    std::vector<int> eligible_idx;
    eligible_idx.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (ctx->attempted[i]) continue;
      auto& rec = records_[i];
      if (eligible(rec)) {
        eligible_idx.push_back(static_cast<int>(i));
      } else {
        // aux encodes why: 1 = Busy, 2 = Error, 3 = breaker open.
        trace_event(obs::EventKind::kGetEndpointSkip, static_cast<int>(i),
                    ctx->req->id, rec.lb_value,
                    rec.breaker_open ? 3 : static_cast<std::int32_t>(rec.state));
      }
    }
    idx = eligible_idx.empty()
              ? -1
              : policy_->pick_for(records_, eligible_idx, rng_, *ctx->req);
  }
  if (idx < 0) {
    ++balancer_errors_;
    ctx->done(-1);
    return;
  }

  ctx->attempted[static_cast<std::size_t>(idx)] = true;
  auto& rec = records_[static_cast<std::size_t>(idx)];
  // The request is now committed to this candidate: even if the acquirer
  // spends 300 ms polling, the paper's per-Tomcat queue accounting counts it
  // against this backend.
  set_committed(idx, +1);
  trace_event(obs::EventKind::kGetEndpointAttempt, idx, ctx->req->id,
              static_cast<double>(pools_[static_cast<std::size_t>(idx)].in_use()));
  acquirer_->set_trace_context(
      {trace_events_, trace_node_, idx, ctx->req->id});

  acquirer_->acquire(
      sim_, pools_[static_cast<std::size_t>(idx)], rec,
      [this, ctx, idx](bool ok) {
        auto& r = records_[static_cast<std::size_t>(idx)];
        if (ok) {
          trace_event(
              obs::EventKind::kEndpointAcquire, idx, ctx->req->id,
              static_cast<double>(pools_[static_cast<std::size_t>(idx)].in_use()));
          r.consecutive_failures = 0;
          if (r.half_open_left > 0) {
            --r.half_open_left;
            // Trial quota spent without a failure: the breaker closes.
            if (r.half_open_left == 0)
              trace_event(obs::EventKind::kBreakerState, idx, ctx->req->id, 0.0);
          }
          ++r.assigned;
          ++r.outstanding;
          policy_->on_assigned(r, *ctx->req);  // Algorithm 2/4 increment point
          trace_lb_value(idx);
          if (!assignment_traces_.empty())
            assignment_traces_[static_cast<std::size_t>(idx)].record(sim_.now(),
                                                                     1.0);
          // Deliberately no write into *ctx->req: which field the chosen
          // index means (tomcat, DB replica, ...) is the caller's business.
          ctx->done(idx);
        } else {
          trace_event(
              obs::EventKind::kGetEndpointTimeout, idx, ctx->req->id,
              static_cast<double>(pools_[static_cast<std::size_t>(idx)].in_use()));
          mark_failure(r);
          set_committed(idx, -1);
          try_next(ctx);
        }
      });
}

void LoadBalancer::assign(const proto::RequestPtr& req,
                          std::function<void(int)> done) {
  auto ctx = std::make_shared<AssignContext>();
  ctx->req = req;
  ctx->done = std::move(done);
  ctx->attempted.assign(records_.size(), false);
  try_next(ctx);
}

void LoadBalancer::report_failure(int idx) {
  mark_failure(records_[static_cast<std::size_t>(idx)]);
}

void LoadBalancer::report_probe(int idx, bool ok, sim::SimTime rtt) {
  auto& rec = records_[static_cast<std::size_t>(idx)];
  ++rec.probes;
  if (!ok) ++rec.probe_failures;
  rec.probe_rtt_ms = rtt.to_seconds() * 1e3;
  const double obs = ok ? 1.0 : 0.0;
  rec.health += config_.breaker.ewma_alpha * (obs - rec.health);
  if (!config_.breaker.enabled) return;

  if (rec.breaker_open) {
    if (ok && sim_.now() >= rec.breaker_until) {
      // Readmission gate: require a streak of ok probes past the dwell so a
      // single lucky probe through a gray-degraded worker cannot re-admit it.
      if (++rec.open_ok_streak < config_.breaker.reopen_probe_successes)
        return;
      // Half-open: re-admit the worker for a handful of trial requests.
      // Reset the mod_jk side too — the probe evidence supersedes whatever
      // Busy/Error verdict the stall left behind.
      rec.breaker_open = false;
      rec.open_ok_streak = 0;
      rec.half_open_left = config_.breaker.half_open_trials;
      rec.state = WorkerState::kAvailable;
      rec.consecutive_failures = 0;
      rec.health = std::max(rec.health, config_.breaker.trip_threshold);
      trace_event(obs::EventKind::kBreakerState, idx, 0, 2.0);  // half-open
    } else if (!ok) {
      rec.open_ok_streak = 0;
      rec.breaker_until = sim_.now() + config_.breaker.open_duration;
    }
    return;
  }
  if (rec.health < config_.breaker.trip_threshold) {
    open_breaker(rec);
    trace_event(obs::EventKind::kBreakerState, idx, 0, 1.0);  // open
  }
}

int LoadBalancer::reset_breakers() {
  int reset = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    auto& rec = records_[i];
    rec.flap_streak = 0;
    rec.open_ok_streak = 0;
    if (!rec.breaker_open && rec.half_open_left == 0) continue;
    rec.breaker_open = false;
    rec.half_open_left = 0;
    rec.state = WorkerState::kAvailable;
    rec.consecutive_failures = 0;
    rec.health = std::max(rec.health, config_.breaker.trip_threshold);
    trace_event(obs::EventKind::kBreakerState, static_cast<int>(i), 0,
                3.0);  // recovery reset
    ++reset;
  }
  return reset;
}

std::uint64_t LoadBalancer::breaker_trips() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) total += rec.breaker_trips;
  return total;
}

void LoadBalancer::on_response(int idx, const proto::RequestPtr& req) {
  auto& rec = records_[static_cast<std::size_t>(idx)];
  pools_[static_cast<std::size_t>(idx)].release();
  trace_event(obs::EventKind::kEndpointRelease, idx, req->id,
              static_cast<double>(pools_[static_cast<std::size_t>(idx)].in_use()));
  assert(rec.outstanding > 0);
  --rec.outstanding;
  ++rec.completed;
  policy_->on_completed(rec, *req);  // Algorithm 3 increment / 4 decrement
  trace_lb_value(idx);
  set_committed(idx, -1);
}

}  // namespace ntier::lb
