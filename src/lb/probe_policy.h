#pragma once

#include <cstdint>

#include "lb/policy.h"
#include "probe/probe_pool.h"

namespace ntier::lb {

/// Base for the probe-driven policy family (kPowerOfD, kPrequal).
///
/// Both policies keep current_load-style lb_value bookkeeping (+1 per
/// assigned request, -1 per response, normalised by weight) so that the base
/// class's default lowest-lb_value pick IS the documented fallback: when the
/// probe pool is unbound, empty, or holds only stale results, the decision
/// degrades to exactly the paper's current_load remedy instead of anything
/// worse. `fallback_picks()` counts how often that happened.
class ProbeAwarePolicy : public LbPolicy {
 public:
  /// Bind the balancer's probe pool (null unbinds → permanent fallback).
  void bind(probe::ProbePool* pool) { pool_ = pool; }
  probe::ProbePool* pool() const { return pool_; }

  /// Decisions driven by probe-fresh state (the policy's probe rule chose).
  std::uint64_t probe_picks() const { return probe_picks_; }
  /// Decisions ranked by current_load where a probed RIF broke the tie that
  /// mod_jk's first-on-tie scan would have given to the lowest worker index.
  std::uint64_t tiebreak_picks() const { return tiebreak_picks_; }
  /// Decisions that fell back to current_load ranking.
  std::uint64_t fallback_picks() const { return fallback_picks_; }

  void on_assigned(WorkerRecord& rec, const proto::Request&) override {
    rec.lb_value += kLbMult / rec.weight;
  }
  void on_completed(WorkerRecord& rec, const proto::Request&) override {
    const double step = kLbMult / rec.weight;
    if (rec.lb_value >= step)
      rec.lb_value -= step;
    else
      rec.lb_value = 0;
  }

 protected:
  /// No usable probe state: count it and degrade to the base class's
  /// lowest-lb_value scan, which our bookkeeping makes current_load ranking.
  int fallback(const std::vector<WorkerRecord>& records,
               const std::vector<int>& eligible, sim::Rng& rng) {
    ++fallback_picks_;
    return LbPolicy::pick(records, eligible, rng);
  }

  probe::ProbePool* pool_ = nullptr;
  std::uint64_t probe_picks_ = 0;
  std::uint64_t tiebreak_picks_ = 0;
  std::uint64_t fallback_picks_ = 0;
};

/// JSQ(d): sample d distinct eligible workers, restrict to those with a
/// fresh probe, pick the lowest probed requests-in-flight (ties broken by
/// lower worker index, deterministically). No sampled worker fresh →
/// current_load fallback over all eligible.
class PowerOfDPolicy final : public ProbeAwarePolicy {
 public:
  explicit PowerOfDPolicy(int d = 3) : d_(d < 1 ? 1 : d) {}
  PolicyKind kind() const override { return PolicyKind::kPowerOfD; }
  int pick(const std::vector<WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override;

 private:
  int d_;
};

/// Prequal's hot/cold lexicographic rule, gated on an anomaly signal.
///
/// Among eligible workers with fresh probes, classify as hot those whose
/// drift-corrected RIF exceeds the configured quantile of the pooled RIFs by
/// the hot_factor safety margin (the millibottleneck signature). When the
/// hot set is non-empty, apply the lexicographic rule: pick the cold worker
/// with the lowest estimated latency (all hot → lowest RIF).
///
/// When nobody is hot the probes carry no congestion signal the balancer's
/// own exact bookkeeping lacks, so ranking is current_load — with the probed
/// global RIF breaking current_load's ties instead of mod_jk's first-index
/// scan. Tie-break consultations do not spend reuse budget (the budget
/// exists to stop herding on probe-driven picks). Empty or stale fresh set
/// → plain current_load fallback.
class PrequalPolicy final : public ProbeAwarePolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kPrequal; }
  int pick(const std::vector<WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override;
};

}  // namespace ntier::lb
