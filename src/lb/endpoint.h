#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "lb/worker_record.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::lb {

/// AJP connection pool between one Apache and one Tomcat
/// (mod_jk `connection_pool_size`). An *endpoint* is a pooled connection; a
/// free endpoint is what `get_endpoint` hunts for. Slots are released when
/// the response comes back, so a stalled Tomcat pins every slot and starves
/// the pool — the trigger of the mechanism limitation.
///
/// Besides the polling-style `try_acquire`, the pool supports FIFO waiters
/// (`acquire_or_wait`): a condvar-style connection pool as used between the
/// servlets and the database, where a `release` hands the slot to the first
/// waiter directly. Waiters are cancellable (a higher layer that times out
/// must withdraw, or a later release would hand it a slot nobody returns)
/// and the whole queue can be `drain`ed when the backend crashes so queued
/// work fails fast instead of waiting on a dead worker.
class EndpointPool {
 public:
  using WaiterId = std::uint64_t;

  explicit EndpointPool(std::size_t capacity) : capacity_(capacity) {}

  bool try_acquire() {
    if (in_use_ >= capacity_) return false;
    ++in_use_;
    return true;
  }

  /// Acquire immediately when a slot is free, otherwise join the FIFO wait
  /// queue. `granted(true)` runs (synchronously, or later on release) once
  /// the slot is held; `granted(false)` when the pool is drained first.
  /// Returns 0 when the slot was granted synchronously, else a waiter id
  /// usable with `cancel_waiter`.
  WaiterId acquire_or_wait(std::function<void(bool)> granted) {
    if (try_acquire()) {
      granted(true);
      return 0;
    }
    const WaiterId id = next_waiter_id_++;
    waiters_.push_back(Waiter{id, std::move(granted)});
    return id;
  }

  /// Withdraw a queued waiter. Returns false when the waiter already left
  /// the queue (granted, drained, or cancelled before); its callback never
  /// runs after a successful cancel.
  bool cancel_waiter(WaiterId id) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->id == id) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Fail every queued waiter (`granted(false)`) — used when the backend
  /// behind this pool crashes, so queued work fails over instead of waiting
  /// on a dead worker. Held slots stay held until their releases arrive.
  void drain() {
    std::deque<Waiter> failed;
    failed.swap(waiters_);
    for (auto& w : failed) w.granted(false);
  }

  void release() {
    if (in_use_ == 0) throw std::logic_error("EndpointPool: release underflow");
    if (in_use_ > capacity_) {
      // The pool shrank (fault-injected capacity change) while this slot was
      // out: retire it instead of handing it to a waiter.
      --in_use_;
      return;
    }
    if (!waiters_.empty()) {
      // Hand the slot to the first waiter; in_use_ stays constant.
      auto granted = std::move(waiters_.front().granted);
      waiters_.pop_front();
      granted(true);
      return;
    }
    --in_use_;
  }

  /// Fault-injection / reconfiguration hook. Growing the pool admits queued
  /// waiters into the new slots; shrinking lets `release` retire slots until
  /// in_use fits again.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (!waiters_.empty() && in_use_ < capacity_) {
      ++in_use_;
      auto granted = std::move(waiters_.front().granted);
      waiters_.pop_front();
      granted(true);
    }
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t waiting() const { return waiters_.size(); }
  bool exhausted() const { return in_use_ >= capacity_; }

 private:
  struct Waiter {
    WaiterId id;
    std::function<void(bool)> granted;
  };

  std::size_t capacity_;
  std::size_t in_use_ = 0;
  WaiterId next_waiter_id_ = 1;
  std::deque<Waiter> waiters_;
};

/// Which `get_endpoint` implementation a balancer runs.
enum class MechanismKind {
  kBlocking,     // stock mod_jk (Algorithm 1): poll-and-sleep up to a timeout
  kNonBlocking,  // the paper's remedy: fail fast, treat the worker as Busy
  kQueueing,     // condvar-style pool: wait FIFO, woken on release (DB pools)
};

std::string to_string(MechanismKind k);

/// Lower-level mechanism: obtain a free endpoint from the candidate's pool.
/// The call is asynchronous because the stock implementation consumes
/// simulated time while polling.
class EndpointAcquirer {
 public:
  virtual ~EndpointAcquirer() = default;
  virtual MechanismKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// Observability context for the *next* acquire call: which request is
  /// hunting which worker's pool on behalf of which balancer. Set by the
  /// LoadBalancer immediately before each acquire (the call entry is
  /// synchronous, so implementations copy it into their own state); a null
  /// collector disables emission. Lets the stock blocking implementation
  /// report each Algorithm-1 poll wake-up as a get_endpoint_poll event.
  struct TraceContext {
    obs::TraceCollector* trace = nullptr;
    int node = -1;    // owning balancer's Apache id
    int worker = -1;  // candidate Tomcat index
    std::uint64_t request = 0;
  };
  void set_trace_context(const TraceContext& ctx) { trace_ctx_ = ctx; }
  const TraceContext& trace_context() const { return trace_ctx_; }

  /// Try to acquire a slot in `pool`; invoke `done(true)` once acquired or
  /// `done(false)` when the mechanism gives up. Implementations must not
  /// mutate `rec` — state transitions on failure belong to the balancer —
  /// but receive it for introspection/assertions.
  virtual void acquire(sim::Simulation& simu, EndpointPool& pool,
                       const WorkerRecord& rec,
                       std::function<void(bool)> done) = 0;

 protected:
  TraceContext trace_ctx_;
};

/// Stock mod_jk behaviour (Algorithm 1): check for a free endpoint, and if
/// none, sleep `JK_SLEEP_DEF` and re-check until `cache_acquire_timeout`
/// elapses. Crucially the candidate's state and lb_value are untouched for
/// the whole wait — the worker stays Available and keeps attracting picks.
class BlockingAcquirer final : public EndpointAcquirer {
 public:
  struct Params {
    sim::SimTime sleep_interval = sim::SimTime::millis(100);   // JK_SLEEP_DEF
    sim::SimTime acquire_timeout = sim::SimTime::millis(300);  // cache_acquire_timeout
  };

  BlockingAcquirer() = default;
  explicit BlockingAcquirer(Params p) : params_(p) {}
  MechanismKind kind() const override { return MechanismKind::kBlocking; }
  const Params& params() const { return params_; }

  void acquire(sim::Simulation& simu, EndpointPool& pool, const WorkerRecord& rec,
               std::function<void(bool)> done) override;

 private:
  Params params_;
};

/// The paper's mechanism remedy (§IV-C): a single immediate attempt. On
/// failure the balancer conservatively treats the candidate as Busy and
/// moves on — a millibottleneck is indistinguishable from exhaustion in the
/// moment, and a fast decision beats a 300 ms stall.
class NonBlockingAcquirer final : public EndpointAcquirer {
 public:
  MechanismKind kind() const override { return MechanismKind::kNonBlocking; }
  void acquire(sim::Simulation& simu, EndpointPool& pool, const WorkerRecord& rec,
               std::function<void(bool)> done) override;
};

/// Condvar-style acquisition: waits FIFO on the chosen pool and is woken
/// directly by the releasing request. This is how the servlet-side DB
/// connection pools behave; note that it *commits* to the chosen worker, so
/// only an adaptive policy protects it from queueing behind a
/// millibottleneck. An optional wait timeout (zero = wait forever, the
/// classic pool) cancels the waiter and fails the acquisition instead of
/// leaking the eventually-granted slot — the hook the front-end retry layer
/// builds on. The acquisition also fails fast when the pool is drained on a
/// backend crash.
class QueueingAcquirer final : public EndpointAcquirer {
 public:
  struct Params {
    sim::SimTime wait_timeout = sim::SimTime::zero();  // zero: unbounded wait
  };

  QueueingAcquirer() = default;
  explicit QueueingAcquirer(Params p) : params_(p) {}
  MechanismKind kind() const override { return MechanismKind::kQueueing; }
  const Params& params() const { return params_; }

  void acquire(sim::Simulation& simu, EndpointPool& pool, const WorkerRecord& rec,
               std::function<void(bool)> done) override;

 private:
  Params params_;
};

std::unique_ptr<EndpointAcquirer> make_acquirer(
    MechanismKind kind, BlockingAcquirer::Params params = {},
    QueueingAcquirer::Params queueing_params = {});

}  // namespace ntier::lb
