#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::lb {

class LoadBalancer;

/// Active health-probe schedule (in the spirit of Prequal's probing and
/// HAProxy's health checks). Each worker is probed every `interval`; a probe
/// that has not answered within `timeout` counts as failed — which is
/// exactly what makes probing catch a *millibottleneck*: a stalled CPU
/// cannot answer a ping any faster than it can answer a request.
struct ProberConfig {
  bool enabled = false;
  sim::SimTime interval = sim::SimTime::millis(100);
  sim::SimTime timeout = sim::SimTime::millis(30);
};

/// Probe-driven circuit breaker. The stock mod_jk state machine only learns
/// about a sick worker from *in-band* acquisition failures — by which time
/// requests are already parked behind it. The breaker trips a worker out of
/// rotation from probe evidence instead, and re-admits it through half-open
/// trial requests.
struct BreakerConfig {
  bool enabled = false;
  /// EWMA weight of each probe observation on the worker's health score
  /// (also applied when the breaker itself is disabled, for observability).
  double ewma_alpha = 0.3;
  /// Health below this opens the breaker (worker leaves rotation).
  double trip_threshold = 0.5;
  /// Minimum open time before a successful probe moves to half-open.
  sim::SimTime open_duration = sim::SimTime::millis(500);
  /// Trial requests admitted half-open; one failure re-opens immediately.
  int half_open_trials = 3;

  // -- flap hysteresis (gray-failure hardening) -------------------------------
  /// A re-trip within this window of the previous trip is a *flap*: the
  /// worker passed its probes (or half-open trials) and immediately failed
  /// on the data path again — the signature of a gray fault. Each
  /// consecutive flap doubles the next open dwell, up to `max_flap_backoff`
  /// doublings, so a flapping worker spends exponentially longer out of
  /// rotation instead of oscillating at the open_duration cadence.
  sim::SimTime flap_window = sim::SimTime::seconds(2);
  int max_flap_backoff = 4;
  /// Consecutive successful probes required (after the dwell elapses) before
  /// an open breaker re-admits half-open trials. 1 preserves the original
  /// single-probe readmission; raising it keeps one lucky probe through a
  /// gray-degraded worker from re-admitting it.
  int reopen_probe_successes = 1;
};

/// Probes every worker of one balancer on a fixed cadence and feeds the
/// outcomes into `LoadBalancer::report_probe`. The probe transport is
/// supplied by the server layer (`ProbeFn`), because only it knows what a
/// probe physically is (a link round trip plus a trivial amount of backend
/// CPU, failing fast when the backend is down).
class HealthProber {
 public:
  /// done(ok) must eventually fire unless the backend is gone; the prober's
  /// own timeout covers the never-answers case.
  using ProbeFn = std::function<void(int worker, std::function<void(bool)> done)>;

  HealthProber(sim::Simulation& simu, LoadBalancer& lb, ProbeFn probe,
               ProberConfig config);

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  const ProberConfig& config() const { return config_; }
  std::uint64_t probes_sent() const { return sent_; }
  std::uint64_t probes_timed_out() const { return timed_out_; }

 private:
  void fire(int worker);

  sim::Simulation& sim_;
  LoadBalancer& lb_;
  ProbeFn probe_;
  ProberConfig config_;
  std::uint64_t sent_ = 0;
  std::uint64_t timed_out_ = 0;
};

}  // namespace ntier::lb
