#include "lb/health.h"

#include "lb/load_balancer.h"

namespace ntier::lb {

HealthProber::HealthProber(sim::Simulation& simu, LoadBalancer& lb,
                           ProbeFn probe, ProberConfig config)
    : sim_(simu), lb_(lb), probe_(std::move(probe)), config_(config) {
  // Stagger the workers' probe phases across one interval so the probes do
  // not land on every backend in the same instant.
  const int n = lb_.num_workers();
  for (int w = 0; w < n; ++w) {
    sim_.after(config_.interval * (w + 1) / n,
               [this, w] { fire(w); });
  }
}

void HealthProber::fire(int worker) {
  ++sent_;
  struct ProbeState {
    bool settled = false;
  };
  auto st = std::make_shared<ProbeState>();
  const sim::SimTime t0 = sim_.now();
  probe_(worker, [this, st, worker, t0](bool ok) {
    if (st->settled) return;  // already counted as a timeout
    st->settled = true;
    lb_.report_probe(worker, ok, sim_.now() - t0);
  });
  sim_.after(config_.timeout, [this, st, worker] {
    if (st->settled) return;
    st->settled = true;
    ++timed_out_;
    lb_.report_probe(worker, false, config_.timeout);
  });
  sim_.after(config_.interval, [this, worker] { fire(worker); });
}

}  // namespace ntier::lb
