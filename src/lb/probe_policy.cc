#include "lb/probe_policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ntier::lb {

namespace {

/// Drift-corrected requests-in-flight: the probed global snapshot, with the
/// balancer's own (stale) contribution swapped for its exact live count.
/// Between probe replies the balancer knows precisely how its own in-flight
/// load on each worker moved; without the swap, every decision inside one
/// probe interval sees the same "coldest" worker and herds onto it — the
/// stale-JSQ failure mode. With it, a quiet interval degrades gracefully
/// toward current_load ranking plus a constant.
double corrected_rif(const probe::ProbeResult& r, const WorkerRecord& rec) {
  return r.rif - r.local_rif + static_cast<double>(rec.outstanding);
}

}  // namespace

int PowerOfDPolicy::pick(const std::vector<WorkerRecord>& records,
                         const std::vector<int>& eligible, sim::Rng& rng) {
  if (eligible.empty()) return -1;
  if (pool_ != nullptr) {
    pool_->expire_now();
    // Sample min(d, n) distinct eligible workers (partial Fisher-Yates), then
    // JSQ over the probe-fresh members of the sample. Ties break toward the
    // lower worker index so the choice is independent of sample order.
    std::vector<int> sample = eligible;
    const int n = static_cast<int>(sample.size());
    const int d = std::min(d_, n);
    int best = -1;
    int fresh_in_sample = 0;
    double best_rif = 0.0;
    double best_lb = 0.0;
    for (int i = 0; i < d; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(i, n - 1));
      std::swap(sample[static_cast<std::size_t>(i)], sample[j]);
      const int w = sample[static_cast<std::size_t>(i)];
      const auto r = pool_->freshest(w);
      if (!r) continue;
      ++fresh_in_sample;
      const auto& rec = records[static_cast<std::size_t>(w)];
      const double rif = corrected_rif(*r, rec);
      // RIF values are integer-valued counts, so exact ties are the common
      // case; breaking them by worker index would starve the high indices
      // (and pile load on worker 0). Break by the balancer's own lb_value,
      // then index.
      if (best < 0 || rif < best_rif ||
          (rif == best_rif &&
           (rec.lb_value < best_lb ||
            (rec.lb_value == best_lb && w < best)))) {
        best = w;
        best_rif = rif;
        best_lb = rec.lb_value;
      }
    }
    // JSQ(d) needs a comparison to mean anything: with only one fresh
    // candidate in the sample it would win unconditionally — however loaded —
    // and expired entries would silently bias the choice. Fall back instead.
    if (fresh_in_sample >= 2) {
      pool_->note_use(best);
      ++probe_picks_;
      return best;
    }
  }
  return fallback(records, eligible, rng);
}

int PrequalPolicy::pick(const std::vector<WorkerRecord>& records,
                        const std::vector<int>& eligible, sim::Rng& rng) {
  if (eligible.empty()) return -1;
  if (pool_ != nullptr) {
    pool_->expire_now();
    std::vector<probe::ProbeResult> fresh;
    fresh.reserve(eligible.size());
    for (int idx : eligible)
      if (auto r = pool_->freshest(idx)) {
        // Rank on the drift-corrected estimate from here on.
        r->rif = corrected_rif(*r, records[static_cast<std::size_t>(idx)]);
        fresh.push_back(*r);
      }
    if (!fresh.empty()) {
      // Hot threshold: the configured quantile of the fresh RIFs, widened by
      // the hot_factor safety margin so ordinary spread around a balanced
      // point marks nobody hot while a millibottleneck's queue spike does.
      std::vector<double> rifs;
      rifs.reserve(fresh.size());
      for (const auto& r : fresh) rifs.push_back(r.rif);
      std::sort(rifs.begin(), rifs.end());
      const auto& pc = pool_->config();
      const auto pos = static_cast<std::size_t>(
          std::floor(pc.hot_quantile * static_cast<double>(rifs.size() - 1)));
      const double quantile = rifs[std::min(pos, rifs.size() - 1)];
      const double hot_threshold =
          std::max(quantile * pc.hot_factor, quantile + 1.0);

      // Anomaly regime — someone is hot: the lexicographic rule. Among cold
      // workers pick the lowest estimated latency; if everyone is hot, fall
      // to the lowest RIF. Ties break toward the lower worker index.
      int best_cold = -1;
      double best_lat = 0.0;
      int best_hot = -1;
      double best_hot_rif = 0.0;
      for (const auto& r : fresh) {
        if (r.rif <= hot_threshold) {
          if (best_cold < 0 || r.latency_ms < best_lat ||
              (r.latency_ms == best_lat && r.worker < best_cold)) {
            best_cold = r.worker;
            best_lat = r.latency_ms;
          }
        } else if (best_hot < 0 || r.rif < best_hot_rif ||
                   (r.rif == best_hot_rif && r.worker < best_hot)) {
          best_hot = r.worker;
          best_hot_rif = r.rif;
        }
      }
      if (best_hot >= 0) {
        const int chosen = best_cold >= 0 ? best_cold : best_hot;
        pool_->note_use(chosen);
        ++probe_picks_;
        return chosen;
      }

      // Quiet regime — probes show no congestion the local bookkeeping
      // misses: rank by current_load, with the probed global RIF breaking
      // the ties mod_jk would hand to the lowest worker index. Tie-break
      // reads spend no reuse budget.
      double min_lb = 0.0;
      bool have_lb = false;
      for (int idx : eligible) {
        const double lb = records[static_cast<std::size_t>(idx)].lb_value;
        if (!have_lb || lb < min_lb) {
          min_lb = lb;
          have_lb = true;
        }
      }
      int best = -1;
      double best_rif = 0.0;
      bool probed_best = false;
      int tied = 0;
      for (int idx : eligible) {
        if (records[static_cast<std::size_t>(idx)].lb_value != min_lb)
          continue;
        ++tied;
        double rif = 0.0;
        bool probed = false;
        for (const auto& r : fresh)
          if (r.worker == idx) {
            rif = r.rif;
            probed = true;
            break;
          }
        // A probed candidate beats an unprobed one; among probed, lower
        // corrected RIF wins; otherwise first index (the strict < keeps
        // mod_jk's scan order for equal candidates).
        if (best < 0 || (probed && !probed_best) ||
            (probed && probed_best && rif < best_rif)) {
          best = idx;
          best_rif = rif;
          probed_best = probed;
        }
      }
      if (tied > 1 && probed_best)
        ++tiebreak_picks_;
      else
        ++fallback_picks_;
      return best;
    }
  }
  return fallback(records, eligible, rng);
}

}  // namespace ntier::lb
