#include "lb/worker_record.h"

namespace ntier::lb {

std::string to_string(WorkerState s) {
  switch (s) {
    case WorkerState::kAvailable: return "available";
    case WorkerState::kBusy: return "busy";
    case WorkerState::kError: return "error";
  }
  return "?";
}

}  // namespace ntier::lb
