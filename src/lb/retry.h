#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace ntier::lb {

/// Front-end retry layer knobs. A failed assignment (balancer 503 or a
/// backend refusing after endpoint acquisition) is retried with capped
/// exponential backoff — but only while the per-request timeout and the
/// retry *budget* allow it, so retries cannot multiply an overload into a
/// retry storm (every request failing + max_attempts retries each would
/// triple the offered load exactly when the system can least afford it).
struct RetryConfig {
  bool enabled = false;
  /// Total tries including the first attempt.
  int max_attempts = 3;
  sim::SimTime base_backoff = sim::SimTime::millis(20);
  sim::SimTime max_backoff = sim::SimTime::millis(200);
  /// No retry is started once a request has been in the server this long.
  sim::SimTime request_timeout = sim::SimTime::seconds(2);
  /// Zero = wait for the backend forever (the AJP default). Non-zero =
  /// abandon an in-flight attempt that has not answered within this long and
  /// retry it elsewhere — the impatient-client knob that turns a slowdown
  /// into *wasted work*: the backend keeps burning CPU on the abandoned
  /// attempt (and the endpoint slot stays busy until it actually answers)
  /// while the front end adds a duplicate. This is the amplification input
  /// every retry-storm basin needs.
  sim::SimTime attempt_timeout = sim::SimTime::zero();
  /// Retry tokens earned per arriving request (0.2 = retries may add at most
  /// ~20% extra load in steady state).
  double budget_ratio = 0.2;
  /// Token cap (also the initial balance): bounds the burst of retries a
  /// sudden fault can trigger.
  double budget_burst = 20.0;

  /// Backoff before retry number `attempt` (0-based), doubling from
  /// base_backoff and capped at max_backoff.
  sim::SimTime backoff(int attempt) const {
    sim::SimTime d = base_backoff;
    for (int i = 0; i < attempt && d < max_backoff; ++i) d = d * 2;
    return std::min(d, max_backoff);
  }
};

/// Token-bucket retry budget (the Finagle/SRE-book construction): each
/// arriving request deposits `ratio` tokens, each retry withdraws one.
/// When the bucket runs dry the failure is surfaced instead of retried.
class RetryBudget {
 public:
  RetryBudget(double ratio, double burst)
      : ratio_(ratio), burst_(burst), tokens_(burst) {}

  void deposit() { tokens_ = std::min(burst_, tokens_ + ratio_); }

  bool try_take() {
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++taken_;
      return true;
    }
    ++denied_;
    return false;
  }

  double tokens() const { return tokens_; }
  std::uint64_t taken() const { return taken_; }
  std::uint64_t denied() const { return denied_; }

 private:
  double ratio_;
  double burst_;
  double tokens_;
  std::uint64_t taken_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace ntier::lb
