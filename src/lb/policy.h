#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lb/worker_record.h"
#include "proto/request.h"
#include "sim/rng.h"

namespace ntier::lb {

/// Which load-balancing policy a balancer runs.
enum class PolicyKind {
  kTotalRequest,  // mod_jk default: fewest accumulated requests (Algorithm 2)
  kTotalTraffic,  // fewest accumulated bytes exchanged (Algorithm 3)
  kCurrentLoad,   // the paper's remedy: fewest outstanding now (Algorithm 4)
  kSessions,      // mod_jk method=Sessions: fewest sessions created
  kRoundRobin,    // classic baseline
  kRandom,        // classic baseline
  kTwoChoices,    // power-of-two-choices on outstanding (extension baseline)
  kPowerOfD,      // JSQ(d) over probe-fresh requests-in-flight (src/probe)
  kPrequal,       // Prequal hot/cold rule over probe-fresh RIF + latency
  kSourceHash,    // client-affinity hash: same client -> same worker
};

std::string to_string(PolicyKind k);

/// Inverse of to_string for every PolicyKind, plus the "po2d" alias for
/// kPowerOfD. Returns nullopt for unknown names; the single parse point used
/// by the CLI and benches.
std::optional<PolicyKind> policy_from_string(const std::string& name);

/// Probe-aware policies (kPowerOfD, kPrequal) need a probe::ProbePool bound
/// after construction; everything else ignores probing entirely.
bool policy_uses_probes(PolicyKind k);

/// Upper level of mod_jk's two-level scheduler: maintains each worker's
/// lb_value and (for the non-value-based baselines) chooses the candidate.
///
/// Hook placement follows the paper's pseudo-code exactly, because it is
/// load-bearing: `total_request` bumps lb_value only *after* an endpoint is
/// acquired, and `total_traffic` only after the *response* arrives — so a
/// worker stuck in a millibottleneck keeps the minimum lb_value and attracts
/// every new request (§V-A).
class LbPolicy {
 public:
  virtual ~LbPolicy() = default;

  virtual PolicyKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// Choose among `eligible` (indices into `records`, all Available and not
  /// yet attempted for this request). Default: lowest lb_value, first on
  /// ties (mod_jk scans workers in order with a strict comparison).
  virtual int pick(const std::vector<WorkerRecord>& records,
                   const std::vector<int>& eligible, sim::Rng& rng);

  /// Request-aware selection; the balancer calls this one. Defaults to the
  /// request-blind pick() so only affinity policies (source_hash) need the
  /// request at all.
  virtual int pick_for(const std::vector<WorkerRecord>& records,
                       const std::vector<int>& eligible, sim::Rng& rng,
                       const proto::Request& req) {
    (void)req;
    return pick(records, eligible, rng);
  }

  /// Endpoint acquired; request about to be sent (Algorithms 2 & 4).
  virtual void on_assigned(WorkerRecord& rec, const proto::Request& req) = 0;

  /// Response received (Algorithms 3 & 4).
  virtual void on_completed(WorkerRecord& rec, const proto::Request& req) = 0;

 protected:
  /// mod_jk's lb_value granularity; kept so traces read like the paper's.
  static constexpr double kLbMult = 1.0;
};

/// Factory for all built-in policies.
std::unique_ptr<LbPolicy> make_policy(PolicyKind kind);

// --------------------------------------------------------------------------
// Concrete policies (exposed for direct construction in tests).

/// Algorithm 2: rank by accumulated number of requests served. The
/// increment is divided by the worker's lbfactor so a weight-2 worker is
/// picked twice as often (mod_jk's lb_mult normalisation).
class TotalRequestPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kTotalRequest; }
  void on_assigned(WorkerRecord& rec, const proto::Request&) override {
    rec.lb_value += kLbMult / rec.weight;
  }
  void on_completed(WorkerRecord&, const proto::Request&) override {}
};

/// Algorithm 3: rank by accumulated message bytes; updated on completion.
class TotalTrafficPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kTotalTraffic; }
  void on_assigned(WorkerRecord&, const proto::Request&) override {}
  void on_completed(WorkerRecord& rec, const proto::Request& req) override {
    rec.lb_value += (static_cast<double>(req.request_bytes) +
                     req.response_bytes) *
                    kLbMult / rec.weight;
  }
};

/// Algorithm 4 (the paper's policy remedy): lb_value tracks the number of
/// requests currently assigned; +1 on send, -1 (floored at 0) on response.
class CurrentLoadPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kCurrentLoad; }
  void on_assigned(WorkerRecord& rec, const proto::Request&) override {
    rec.lb_value += kLbMult / rec.weight;
  }
  void on_completed(WorkerRecord& rec, const proto::Request&) override {
    const double step = kLbMult / rec.weight;
    if (rec.lb_value >= step)
      rec.lb_value -= step;
    else
      rec.lb_value = 0;
  }
};

/// mod_jk method=Sessions: rank by the number of *sessions* opened on each
/// worker — lb_value advances only for requests that do not yet carry a
/// session route. Pair with sticky sessions. Shares the cumulative-counter
/// pathology of total_request: a stalled worker's session count freezes.
class SessionsPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSessions; }
  void on_assigned(WorkerRecord& rec, const proto::Request& req) override {
    if (req.session_route < 0) rec.lb_value += kLbMult / rec.weight;
  }
  void on_completed(WorkerRecord&, const proto::Request&) override {}
};

/// Baseline: cycle through eligible workers regardless of lb_value.
class RoundRobinPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kRoundRobin; }
  int pick(const std::vector<WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override;
  void on_assigned(WorkerRecord&, const proto::Request&) override {}
  void on_completed(WorkerRecord&, const proto::Request&) override {}

 private:
  std::size_t next_ = 0;
};

/// Baseline: uniformly random among eligible workers.
class RandomPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kRandom; }
  int pick(const std::vector<WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override;
  void on_assigned(WorkerRecord&, const proto::Request&) override {}
  void on_completed(WorkerRecord&, const proto::Request&) override {}
};

/// Extension baseline: sample two eligible workers, pick the one with fewer
/// outstanding requests (Mitzenmacher's power of two choices). Shares
/// current_load's adaptivity with O(1) state inspection.
class TwoChoicesPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kTwoChoices; }
  int pick(const std::vector<WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override;
  void on_assigned(WorkerRecord&, const proto::Request&) override {}
  void on_completed(WorkerRecord&, const proto::Request&) override {}
};

/// Affinity baseline: hash the originating client onto a worker, so the same
/// client always lands on the same backend (HAProxy `balance source`). The
/// KV hot-shard benchmark includes it to show that even perfect affinity
/// cannot dodge a *key-level* bottleneck — every server still funnels the
/// hot key into the same shard quorum. Falls back to a hash over the
/// eligible set when the preferred worker is sidelined.
class SourceHashPolicy final : public LbPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSourceHash; }
  int pick_for(const std::vector<WorkerRecord>& records,
               const std::vector<int>& eligible, sim::Rng& rng,
               const proto::Request& req) override;
  void on_assigned(WorkerRecord&, const proto::Request&) override {}
  void on_completed(WorkerRecord&, const proto::Request&) override {}
};

}  // namespace ntier::lb
