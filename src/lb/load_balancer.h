#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lb/endpoint.h"
#include "lb/health.h"
#include "lb/policy.h"
#include "lb/worker_record.h"
#include "metrics/time_series.h"
#include "obs/trace.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::probe {
class ProbePool;
}  // namespace ntier::probe

namespace ntier::lb {

/// Balancer tunables (mod_jk worker properties plus the remedy knobs).
struct BalancerConfig {
  /// AJP connections per (Apache, Tomcat) pair. The paper's Apache runs two
  /// worker-MPM children with connection_pool_size 25 each, so one Apache
  /// can hold 50 connections to each Tomcat.
  std::size_t endpoint_pool_size = 50;
  /// How long a Busy worker is skipped before being retried.
  sim::SimTime busy_recovery = sim::SimTime::millis(100);
  /// Consecutive Busy *episodes* (not individual waiter failures) before a
  /// worker escalates to Error. Transient millibottlenecks resolve within a
  /// couple of episodes; only a genuinely dead backend accumulates more.
  int failures_to_error = 5;
  /// How long an Error worker is skipped (mod_jk `retry`, default 60 s).
  sim::SimTime error_recovery = sim::SimTime::seconds(60);
  BlockingAcquirer::Params blocking;

  /// Per-worker lbfactor weights (empty = all 1.0). A weight-2 worker
  /// receives twice the traffic of a weight-1 worker under the
  /// value-normalised policies.
  std::vector<double> worker_weights;

  /// mod_jk "maintain" aging: every interval, every lb_value is divided by
  /// `decay_divisor`, bounding how long historical imbalance dominates.
  /// Zero disables it — the paper's pseudo-code has no aging, and aging is
  /// far too slow (60 s) to help against a 300 ms millibottleneck.
  sim::SimTime decay_interval = sim::SimTime::zero();
  double decay_divisor = 2.0;

  /// Honour Request::session_route (mod_jk sticky sessions): a request
  /// carrying a route goes back to that worker whenever it is eligible.
  bool sticky_sessions = false;
  /// mod_jk sticky_session_force: fail (503) instead of falling back to the
  /// policy when the routed worker cannot take the request.
  bool sticky_force = false;

  /// Probe-driven circuit breaker (see lb/health.h). Probe outcomes arrive
  /// via report_probe; with breaker.enabled a sick worker is tripped out of
  /// rotation and re-admitted through half-open trial requests.
  BreakerConfig breaker;
};

/// mod_jk's two-level scheduler, one instance per Apache.
///
/// Upper level: the policy ranks workers by lb_value. Lower level: the
/// acquirer obtains a free endpoint from the chosen worker's pool. The
/// *interaction* of the two levels under a millibottleneck is the paper's
/// subject: with the stock blocking acquirer, a stalled worker keeps its
/// (minimal) lb_value and its Available state for the whole 300 ms poll, so
/// every concurrent assignment funnels into it.
class LoadBalancer {
 public:
  LoadBalancer(sim::Simulation& simu, int num_workers,
               std::unique_ptr<LbPolicy> policy,
               std::unique_ptr<EndpointAcquirer> acquirer,
               BalancerConfig config = {});

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  /// Select a backend and acquire an endpoint for `req`. `done(tomcat)` is
  /// called — possibly after simulated polling time — with the chosen worker
  /// index, or -1 when every worker was tried and none yielded an endpoint
  /// (the request fails with a balancer error, as mod_jk returns 503).
  void assign(const proto::RequestPtr& req, std::function<void(int)> done);

  /// The response for `req` arrived from worker `idx`: release the endpoint
  /// and run the policy's completion hook.
  void on_response(int idx, const proto::RequestPtr& req);

  /// Out-of-band failure evidence for `idx` (e.g. the backend refused a
  /// request after the endpoint was acquired). Feeds the same Busy/Error
  /// escalation as an endpoint-acquisition failure, and re-opens the breaker
  /// if the worker was half-open.
  void report_failure(int idx);

  /// A health-probe outcome for `idx` (called by HealthProber). Updates the
  /// worker's EWMA health score and drives the circuit breaker:
  /// trip when health < trip_threshold, then — after open_duration — a
  /// successful probe moves the worker to half-open with
  /// `half_open_trials` trial requests.
  void report_probe(int idx, bool ok, sim::SimTime rtt);

  /// Recovery intervention: force-close every open breaker and clear flap
  /// state. Used at episode step-down (after queues drain) so the fleet
  /// re-enters rotation together instead of through staggered half-opens.
  /// Returns the number of breakers that were open or half-open.
  int reset_breakers();

  // -- introspection ---------------------------------------------------------
  int num_workers() const { return static_cast<int>(records_.size()); }
  const WorkerRecord& record(int idx) const {
    return records_[static_cast<std::size_t>(idx)];
  }
  const EndpointPool& pool(int idx) const {
    return pools_[static_cast<std::size_t>(idx)];
  }
  /// Mutable pool access for fault injection (pool leaks, crash drains).
  EndpointPool& mutable_pool(int idx) {
    return pools_[static_cast<std::size_t>(idx)];
  }
  LbPolicy& policy() { return *policy_; }
  EndpointAcquirer& acquirer() { return *acquirer_; }

  /// Bind a probe pool to a probe-aware policy (kPowerOfD / kPrequal).
  /// Returns false — and leaves the pool unused — for every other policy,
  /// which keeps probing strictly additive to the existing policy family.
  bool attach_probes(probe::ProbePool* pool);
  const BalancerConfig& config() const { return config_; }

  std::uint64_t balancer_errors() const { return balancer_errors_; }
  std::uint64_t sticky_hits() const { return sticky_hits_; }
  /// Total breaker open transitions across all workers.
  std::uint64_t breaker_trips() const;

  /// Apply one round of lb_value aging immediately (also runs on the
  /// configured decay_interval).
  void decay_now();

  /// Enable per-worker tracing: lb_value gauge, committed-queue gauge and
  /// per-window assignment counts (the figures' raw series). Must be called
  /// before traffic flows.
  void enable_tracing(sim::SimTime window);
  bool tracing() const { return !lb_value_traces_.empty(); }

  /// Attach the cross-tier event collector (null disables). Balancer events
  /// are emitted with tier=kBalancer, node=`apache_id`, worker=candidate
  /// index: get_endpoint attempt/poll/timeout/skip, endpoint acquire/release,
  /// lb_value updates and breaker transitions.
  void set_trace(obs::TraceCollector* trace, int apache_id) {
    trace_events_ = trace;
    trace_node_ = apache_id;
  }
  const metrics::GaugeSeries& lb_value_trace(int idx) const {
    return lb_value_traces_[static_cast<std::size_t>(idx)];
  }
  const metrics::GaugeSeries& committed_trace(int idx) const {
    return committed_traces_[static_cast<std::size_t>(idx)];
  }
  const metrics::TimeSeries& assignment_trace(int idx) const {
    return assignment_traces_[static_cast<std::size_t>(idx)];
  }
  void finish_traces();

 private:
  struct AssignContext;

  /// Lazy Busy/Error recovery plus eligibility filtering.
  bool eligible(WorkerRecord& rec);
  void arm_decay();
  void mark_failure(WorkerRecord& rec);
  /// Trip the breaker with flap-aware dwell escalation.
  void open_breaker(WorkerRecord& rec);
  void trace_event(obs::EventKind kind, int worker, std::uint64_t request,
                   double value = 0.0, std::int32_t aux = 0);
  void try_next(const std::shared_ptr<AssignContext>& ctx);
  void set_committed(int idx, int delta);
  void trace_lb_value(int idx);

  sim::Simulation& sim_;
  std::unique_ptr<LbPolicy> policy_;
  std::unique_ptr<EndpointAcquirer> acquirer_;
  BalancerConfig config_;
  std::vector<WorkerRecord> records_;
  std::vector<EndpointPool> pools_;
  sim::Rng rng_;
  std::uint64_t balancer_errors_ = 0;
  std::uint64_t sticky_hits_ = 0;
  obs::TraceCollector* trace_events_ = nullptr;
  int trace_node_ = -1;

  std::vector<metrics::GaugeSeries> lb_value_traces_;
  std::vector<metrics::GaugeSeries> committed_traces_;
  std::vector<metrics::TimeSeries> assignment_traces_;
};

}  // namespace ntier::lb
