#include "metrics/request_log.h"

#include <cstdio>

namespace ntier::metrics {

void RequestLog::on_complete(const RequestRecord& r) {
  retransmissions_ += r.retransmissions;
  if (r.within_deadline()) ++within_deadline_;
  if (r.shed != proto::ShedReason::kNone)
    ++sheds_[static_cast<std::size_t>(r.shed)];
  switch (r.outcome) {
    case RequestOutcome::kDropped:
      ++dropped_;
      break;
    case RequestOutcome::kBalancerError:
      ++balancer_errors_;
      break;
    case RequestOutcome::kInFlight:
      break;  // not counted: the run ended first
    case RequestOutcome::kOk: {
      const double ms = r.response_ms();
      histogram_.record(ms);
      rt_series_.record(r.end, ms);
      if (ms > kVlrtThresholdMs) vlrt_series_.record(r.end, 1.0);
      break;
    }
  }
  if (keep_records_) records_.push_back(r);
}

std::string RequestLog::summary_row(const std::string& label) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-44s %10lld %12.2f %10.2f%% %10.2f%%",
                label.c_str(), static_cast<long long>(completed()),
                mean_response_ms(), 100.0 * vlrt_fraction(),
                100.0 * normal_fraction());
  return buf;
}

void RequestLog::to_csv(std::ostream& os) const {
  os << "id,interaction,apache,tomcat,retransmissions,outcome,start_s,end_s,"
        "rt_ms,priority,shed,deadline_met\n";
  for (const auto& r : records_) {
    os << r.id << ',' << r.interaction << ',' << r.apache << ',' << r.tomcat
       << ',' << static_cast<int>(r.retransmissions) << ','
       << static_cast<int>(r.outcome) << ',' << r.start.to_seconds() << ','
       << r.end.to_seconds() << ',' << r.response_ms() << ','
       << static_cast<int>(r.priority) << ',' << proto::to_string(r.shed)
       << ',' << (r.within_deadline() ? 1 : 0) << '\n';
  }
}

}  // namespace ntier::metrics
