#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ntier::metrics {

LatencyHistogram::LatencyHistogram(double min_value_ms, double max_value_ms,
                                   int buckets_per_decade)
    : min_value_(min_value_ms),
      log_min_(std::log10(min_value_ms)),
      inv_log_step_(buckets_per_decade) {
  if (min_value_ms <= 0 || max_value_ms <= min_value_ms || buckets_per_decade <= 0)
    throw std::invalid_argument("LatencyHistogram: bad bucketisation");
  const double decades = std::log10(max_value_ms) - log_min_;
  counts_.assign(static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 1, 0);
}

std::size_t LatencyHistogram::bucket_index(double v) const {
  if (v <= min_value_) return 0;
  const double idx = (std::log10(v) - log_min_) * inv_log_step_;
  const auto i = static_cast<std::size_t>(idx);
  return std::min(i, counts_.size() - 1);
}

double LatencyHistogram::bucket_lower(std::size_t i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) / inv_log_step_);
}

void LatencyHistogram::record(double value_ms) {
  if (count_ == 0) {
    min_rec_ = max_rec_ = value_ms;
  } else {
    min_rec_ = std::min(min_rec_, value_ms);
    max_rec_ = std::max(max_rec_, value_ms);
  }
  ++count_;
  sum_ += value_ms;
  ++counts_[bucket_index(value_ms)];
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  // p=0 means "the smallest recorded value", i.e. the first non-empty bucket.
  const double target =
      std::max(1.0, p / 100.0 * static_cast<double>(count_));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) return bucket_upper(i);
  }
  return bucket_upper(counts_.size() - 1);
}

std::int64_t LatencyHistogram::count_above(double threshold_ms) const {
  // Snap the threshold to its containing bucket: the whole straddling bucket
  // counts as "above", so above/below partition the samples exactly. (The
  // old formulation skipped the bucket with lower < threshold < upper from
  // BOTH sides, silently undercounting VLRT fractions at any threshold that
  // is not a bucket boundary.)
  std::int64_t n = 0;
  for (std::size_t i = bucket_index(threshold_ms); i < counts_.size(); ++i)
    n += counts_[i];
  return n;
}

double LatencyHistogram::fraction_above(double threshold_ms) const {
  return count_ ? static_cast<double>(count_above(threshold_ms)) /
                      static_cast<double>(count_)
                : 0.0;
}

double LatencyHistogram::fraction_below(double threshold_ms) const {
  if (count_ == 0) return 0.0;
  // Exact complement of count_above: every sample lands on exactly one side.
  return static_cast<double>(count_ - count_above(threshold_ms)) /
         static_cast<double>(count_);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.min_value_ != min_value_ ||
      other.inv_log_step_ != inv_log_step_)
    throw std::invalid_argument("LatencyHistogram::merge: incompatible buckets");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_) {
    if (count_ == 0) {
      min_rec_ = other.min_rec_;
      max_rec_ = other.max_rec_;
    } else {
      min_rec_ = std::min(min_rec_, other.min_rec_);
      max_rec_ = std::max(max_rec_, other.max_rec_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::to_csv(std::ostream& os, const std::string& name) const {
  os << "# histogram=" << name << "\n";
  os << "bucket_lower_ms,bucket_upper_ms,count\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << bucket_lower(i) << ',' << bucket_upper(i) << ',' << counts_[i] << '\n';
  }
}

}  // namespace ntier::metrics
