#include "metrics/breakdown.h"

#include <iomanip>

namespace ntier::metrics {

const char* LatencyBreakdown::segment_name(Segment s) {
  switch (s) {
    case kConnect: return "connect (incl. retransmits)";
    case kBalancing: return "balancing (get_endpoint)";
    case kBackend: return "backend (tomcat + mysql)";
    case kReply: return "reply delivery";
    case kNumSegments: break;
  }
  return "?";
}

LatencyBreakdown::LatencyBreakdown() {
  // Finer floor than the request histogram: segments can be microseconds.
  for (int s = 0; s < kNumSegments; ++s)
    hists_.emplace_back(/*min_value_ms=*/0.01, /*max_value_ms=*/100'000.0,
                        /*buckets_per_decade=*/20);
}

LatencyBreakdown::Segment LatencyBreakdown::furthest_segment(
    const RequestRecord& rec) {
  if (rec.accepted_at.ns() == 0) return kConnect;
  if (rec.assigned_at.ns() == 0) return kBalancing;
  if (rec.backend_done_at.ns() == 0) return kBackend;
  return kReply;
}

void LatencyBreakdown::add(const RequestRecord& rec) {
  if (rec.outcome == RequestOutcome::kDropped) {
    ++dropped_;
    ++dropped_in_[static_cast<std::size_t>(furthest_segment(rec))];
    ++skipped_;
    return;
  }
  if (rec.outcome == RequestOutcome::kBalancerError) {
    ++balancer_errors_;
    const auto seg = static_cast<std::size_t>(furthest_segment(rec));
    ++errored_in_[seg];
    if (rec.shed != proto::ShedReason::kNone)
      ++shed_in_[seg][static_cast<std::size_t>(rec.shed)];
    ++skipped_;
    return;
  }
  // Only completed requests that traversed the full path decompose cleanly.
  if (rec.outcome != RequestOutcome::kOk || rec.accepted_at < rec.start ||
      rec.assigned_at < rec.accepted_at ||
      rec.backend_done_at < rec.assigned_at || rec.end < rec.backend_done_at) {
    ++skipped_;
    return;
  }
  ++requests_;
  hists_[kConnect].record((rec.accepted_at - rec.start).to_millis());
  hists_[kBalancing].record((rec.assigned_at - rec.accepted_at).to_millis());
  hists_[kBackend].record((rec.backend_done_at - rec.assigned_at).to_millis());
  hists_[kReply].record((rec.end - rec.backend_done_at).to_millis());
  if (rec.kv_wait_ms > 0) {
    ++kv_requests_;
    kv_wait_hist_.record(rec.kv_wait_ms);
    kv_degraded_ms_ += rec.kv_degraded_ms;
  }
}

void LatencyBreakdown::add_all(const std::vector<RequestRecord>& records) {
  for (const auto& r : records) add(r);
}

double LatencyBreakdown::share(Segment s) const {
  double total = 0;
  for (int k = 0; k < kNumSegments; ++k)
    total += hists_[static_cast<std::size_t>(k)].mean();
  return total > 0 ? hist(s).mean() / total : 0.0;
}

void LatencyBreakdown::print(std::ostream& os) const {
  os << "latency breakdown over " << requests_ << " requests";
  if (skipped_) os << " (" << skipped_ << " skipped)";
  os << ":\n";
  os << "  " << std::left << std::setw(30) << "segment" << std::right
     << std::setw(12) << "mean (ms)" << std::setw(12) << "p99 (ms)"
     << std::setw(10) << "share" << "\n";
  for (int s = 0; s < kNumSegments; ++s) {
    const auto seg = static_cast<Segment>(s);
    os << "  " << std::left << std::setw(30) << segment_name(seg) << std::right
       << std::fixed << std::setprecision(3) << std::setw(12) << mean_ms(seg)
       << std::setw(12) << p99_ms(seg) << std::setw(9) << std::setprecision(1)
       << 100 * share(seg) << "%" << "\n";
  }
  if (kv_requests_ > 0) {
    os << "  kv quorum wait (within backend): " << kv_requests_
       << " requests, mean " << std::fixed << std::setprecision(3)
       << kv_wait_hist_.mean() << " ms, p99 " << kv_wait_hist_.percentile(99)
       << " ms, degraded total " << std::setprecision(1) << kv_degraded_ms_
       << " ms\n";
  }
  if (dropped_ > 0 || balancer_errors_ > 0) {
    os << "  failed before completion: " << dropped_ << " dropped, "
       << balancer_errors_ << " balancer errors\n";
    for (int s = 0; s < kNumSegments; ++s) {
      const auto seg = static_cast<Segment>(s);
      if (dropped_in(seg) == 0 && errored_in(seg) == 0) continue;
      os << "    died in " << std::left << std::setw(30) << segment_name(seg)
         << std::right;
      if (dropped_in(seg) > 0) os << " " << dropped_in(seg) << " dropped";
      if (errored_in(seg) > 0)
        os << " " << errored_in(seg) << " balancer errors";
      os << "\n";
    }
    // Drop-reason attribution: which of those were deliberate overload
    // sheds (answered 503s) rather than silent overflow drops.
    static constexpr proto::ShedReason kReasons[] = {
        proto::ShedReason::kAdmission, proto::ShedReason::kBrownout,
        proto::ShedReason::kDeadlineExpired, proto::ShedReason::kSojourn,
        proto::ShedReason::kRecovery};
    std::int64_t total_sheds = 0;
    for (auto r : kReasons) total_sheds += sheds(r);
    if (total_sheds > 0) {
      os << "  shed by overload control: " << total_sheds << " (";
      bool first = true;
      for (auto r : kReasons) {
        if (sheds(r) == 0) continue;
        if (!first) os << ", ";
        os << sheds(r) << " " << proto::to_string(r);
        first = false;
      }
      os << ")\n";
      for (int s = 0; s < kNumSegments; ++s) {
        const auto seg = static_cast<Segment>(s);
        std::int64_t in_seg = 0;
        for (auto r : kReasons) in_seg += shed_in(seg, r);
        if (in_seg == 0) continue;
        os << "    shed in " << std::left << std::setw(30) << segment_name(seg)
           << std::right << " " << in_seg << "\n";
      }
    }
  }
}

}  // namespace ntier::metrics
