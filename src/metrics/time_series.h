#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::metrics {

/// Validate an aggregation window at construction time: window_index()
/// divides by window.ns(), so a non-positive window is integer
/// divide-by-zero UB rather than a recoverable error. Fail loudly instead.
sim::SimTime checked_window(sim::SimTime window);

/// Fixed-width-window aggregation of point samples (e.g. per-50 ms response
/// times, VLRT counts). The paper's time-series figures are all rendered
/// from this form.
class TimeSeries {
 public:
  /// `window` is the aggregation bin width (the paper uses 50 ms bins).
  /// Must be positive — a zero window would divide by zero in the bin index.
  explicit TimeSeries(sim::SimTime window) : window_(checked_window(window)) {}

  void record(sim::SimTime t, double value);

  sim::SimTime window() const { return window_; }
  std::size_t num_windows() const { return windows_.size(); }
  sim::SimTime window_start(std::size_t i) const {
    return window_ * static_cast<std::int64_t>(i);
  }

  std::int64_t count(std::size_t i) const { return at(i).count; }
  double sum(std::size_t i) const { return at(i).sum; }
  double max(std::size_t i) const { return at(i).count ? at(i).max : 0.0; }
  double min(std::size_t i) const { return at(i).count ? at(i).min : 0.0; }
  double avg(std::size_t i) const {
    return at(i).count ? at(i).sum / static_cast<double>(at(i).count) : 0.0;
  }

  std::int64_t total_count() const;
  double total_sum() const;

  /// Largest bin maximum across the whole series (queue peaks, etc.).
  double global_max() const;

  /// CSV: window_start_s,count,sum,avg,min,max
  void to_csv(std::ostream& os, const std::string& name) const;

 private:
  struct Window {
    std::int64_t count = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  const Window& at(std::size_t i) const {
    static const Window kEmpty{};
    return i < windows_.size() ? windows_[i] : kEmpty;
  }

  sim::SimTime window_;
  std::vector<Window> windows_;
};

/// Time-weighted gauge (queue length, lb_value, dirty bytes): tracks a value
/// that changes at discrete instants, and reports the per-window
/// time-weighted mean and max. `set()` must be called with non-decreasing
/// timestamps; `finish()` closes the integration at the end of a run.
class GaugeSeries {
 public:
  explicit GaugeSeries(sim::SimTime window) : window_(checked_window(window)) {}

  void set(sim::SimTime t, double value);
  void add(sim::SimTime t, double delta) { set(t, last_value_ + delta); }
  void finish(sim::SimTime t) { advance(t); }

  double current() const { return last_value_; }
  sim::SimTime window() const { return window_; }
  std::size_t num_windows() const { return windows_.size(); }
  sim::SimTime window_start(std::size_t i) const {
    return window_ * static_cast<std::int64_t>(i);
  }

  /// Max value observed at any instant within the window.
  double max(std::size_t i) const;
  /// Time-weighted mean over the window.
  double time_avg(std::size_t i) const;

  double global_max() const;

  /// CSV: window_start_s,avg,max
  void to_csv(std::ostream& os, const std::string& name) const;

 private:
  struct Window {
    double integral = 0;            // value * ns
    sim::SimTime covered;           // ns of the window integrated so far
    double max = -std::numeric_limits<double>::infinity();
    bool touched = false;
  };
  void advance(sim::SimTime t);
  Window& window_at(std::size_t i);

  sim::SimTime window_;
  std::vector<Window> windows_;
  sim::SimTime last_t_;
  double last_value_ = 0;
};

}  // namespace ntier::metrics
