#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/time_series.h"
#include "proto/request.h"
#include "sim/time.h"

namespace ntier::metrics {

/// How a request's life ended.
enum class RequestOutcome : std::uint8_t {
  kOk,            // response delivered to the client
  kDropped,       // connection attempts exhausted (all retransmissions lost)
  kBalancerError, // the load balancer found no usable backend
  kInFlight,      // still outstanding when the run ended
};

/// One completed client interaction, as the client experienced it.
struct RequestRecord {
  std::uint64_t id = 0;
  std::uint16_t interaction = 0;   // index into the workload's interaction table
  std::int16_t apache = -1;        // front-end that (eventually) served it
  std::int16_t tomcat = -1;        // backend that served it (-1 if none)
  std::uint8_t retransmissions = 0;
  RequestOutcome outcome = RequestOutcome::kOk;
  sim::SimTime start;              // first connection attempt
  sim::SimTime end;                // response received (or failure decided)
  // Per-hop timestamps (zero when the request never reached the hop).
  sim::SimTime accepted_at;        // Apache worker picked it up
  sim::SimTime assigned_at;        // balancer yielded an endpoint
  sim::SimTime backend_done_at;    // backend response back at the Apache
  // Overload control: the stamped absolute deadline (zero = none), the
  // priority class, and which tier (if any) shed the request.
  sim::SimTime deadline;
  std::uint8_t priority = 1;
  proto::ShedReason shed = proto::ShedReason::kNone;
  // KV data tier: total quorum wait across the request's round trips, and
  // the share accrued while the touched shard was degraded (zero in MySQL
  // mode or when no replica was down).
  double kv_wait_ms = 0;
  double kv_degraded_ms = 0;

  double response_ms() const { return (end - start).to_millis(); }
  /// Goodput criterion: completed, and within the deadline when one was
  /// stamped (an un-deadlined completion always counts).
  bool within_deadline() const {
    return outcome == RequestOutcome::kOk &&
           (deadline == sim::SimTime::zero() || end <= deadline);
  }
};

/// Client-side bookkeeping for a whole run: latency histogram, point-in-time
/// response-time series, VLRT-per-window counts, and (optionally) the full
/// per-request trace. Thresholds follow the paper: VLRT > 1000 ms, "normal"
/// < 10 ms.
class RequestLog {
 public:
  static constexpr double kVlrtThresholdMs = 1000.0;
  static constexpr double kNormalThresholdMs = 10.0;

  explicit RequestLog(sim::SimTime window = sim::SimTime::millis(50),
                      bool keep_records = false)
      : window_(window),
        keep_records_(keep_records),
        rt_series_(window),
        vlrt_series_(window) {}

  void on_complete(const RequestRecord& r);

  // -- aggregates -----------------------------------------------------------
  std::int64_t completed() const { return histogram_.count(); }
  std::int64_t dropped() const { return dropped_; }
  std::int64_t balancer_errors() const { return balancer_errors_; }
  std::int64_t total_retransmissions() const { return retransmissions_; }
  /// Completions that met their deadline (== completed() when no deadlines
  /// were stamped) — the numerator of goodput.
  std::int64_t completed_within_deadline() const { return within_deadline_; }
  /// Completions that arrived after their stamped deadline.
  std::int64_t missed_deadline() const {
    return completed() - within_deadline_;
  }
  /// Requests whose terminal outcome was a shed by the overload layer,
  /// by reason (kNone slot unused).
  std::int64_t shed_count(proto::ShedReason r) const {
    return sheds_[static_cast<std::size_t>(r)];
  }
  std::int64_t total_sheds() const {
    std::int64_t total = 0;
    for (auto s : sheds_) total += s;
    return total;
  }

  double mean_response_ms() const { return histogram_.mean(); }
  double percentile_ms(double p) const { return histogram_.percentile(p); }
  std::int64_t vlrt_count() const { return histogram_.count_above(kVlrtThresholdMs); }
  double vlrt_fraction() const { return histogram_.fraction_above(kVlrtThresholdMs); }
  double normal_fraction() const { return histogram_.fraction_below(kNormalThresholdMs); }

  const LatencyHistogram& histogram() const { return histogram_; }
  /// Per-window response-time stats (avg/max), keyed by completion time.
  const TimeSeries& response_time_series() const { return rt_series_; }
  /// Per-window count of VLRT completions — the paper's Fig. 2(a)/6(a)/7(a).
  const TimeSeries& vlrt_series() const { return vlrt_series_; }

  const std::vector<RequestRecord>& records() const { return records_; }

  /// One formatted row of Table I.
  std::string summary_row(const std::string& label) const;

  void to_csv(std::ostream& os) const;

 private:
  sim::SimTime window_;
  bool keep_records_;
  LatencyHistogram histogram_;
  TimeSeries rt_series_;
  TimeSeries vlrt_series_;
  std::vector<RequestRecord> records_;
  std::int64_t dropped_ = 0;
  std::int64_t balancer_errors_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t within_deadline_ = 0;
  std::array<std::int64_t, 6> sheds_{};  // indexed by proto::ShedReason
};

}  // namespace ntier::metrics
