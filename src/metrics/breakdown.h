#pragma once

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/request_log.h"

namespace ntier::metrics {

/// Where the time goes: per-request latency decomposed into the four hops
/// the per-request timestamps delimit. During millibottlenecks the connect
/// and balancing segments explode (SYN retransmissions; workers parked in
/// get_endpoint) while the backend segment stays modest — the breakdown
/// makes the paper's amplification argument visible per request.
class LatencyBreakdown {
 public:
  enum Segment {
    kConnect = 0,    // first SYN -> accepted by an Apache worker (includes
                     // every retransmission wait)
    kBalancing,      // accepted -> endpoint acquired (queueing + get_endpoint)
    kBackend,        // endpoint acquired -> response back at the Apache
    kReply,          // response at Apache -> response at the client
    kNumSegments,
  };

  static const char* segment_name(Segment s);

  LatencyBreakdown();

  /// Digest a completed-OK record. Dropped and balancer-error records are
  /// not decomposed (they never traversed the full path) but are tallied
  /// against the furthest segment they reached, so the table can show
  /// *where* requests die, not just that they did.
  void add(const RequestRecord& rec);
  void add_all(const std::vector<RequestRecord>& records);

  /// The furthest segment a record got into before its life ended (the
  /// first hop whose completion timestamp was never stamped).
  static Segment furthest_segment(const RequestRecord& rec);

  std::int64_t requests() const { return requests_; }
  std::int64_t skipped() const { return skipped_; }
  std::int64_t dropped() const { return dropped_; }
  std::int64_t balancer_errors() const { return balancer_errors_; }
  /// Dropped / balancer-error requests whose life ended inside segment `s`.
  std::int64_t dropped_in(Segment s) const {
    return dropped_in_[static_cast<std::size_t>(s)];
  }
  std::int64_t errored_in(Segment s) const {
    return errored_in_[static_cast<std::size_t>(s)];
  }
  /// Drop-reason attribution: terminal overload-layer sheds (a subset of
  /// the balancer errors above) by reason, per the furthest segment the
  /// request reached. Overflow drops (silent SYN drops) remain in
  /// dropped_in(); sheds are answered 503s and are broken out here.
  std::int64_t shed_in(Segment s, proto::ShedReason r) const {
    return shed_in_[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
  }
  std::int64_t sheds(proto::ShedReason r) const {
    std::int64_t total = 0;
    for (int s = 0; s < kNumSegments; ++s)
      total += shed_in(static_cast<Segment>(s), r);
    return total;
  }

  double mean_ms(Segment s) const { return hist(s).mean(); }
  double p99_ms(Segment s) const { return hist(s).percentile(99); }
  double share(Segment s) const;  // fraction of total mean latency

  const LatencyHistogram& hist(Segment s) const {
    return hists_[static_cast<std::size_t>(s)];
  }

  /// KV-mode attribution *within* the backend segment: time the request
  /// spent waiting on KV quorums, and the degraded-quorum share of it
  /// (a preference-list replica down). Zero requests in MySQL mode.
  std::int64_t kv_requests() const { return kv_requests_; }
  const LatencyHistogram& kv_wait_hist() const { return kv_wait_hist_; }
  double kv_degraded_ms_total() const { return kv_degraded_ms_; }

  /// Human-readable table.
  void print(std::ostream& os) const;

 private:
  std::vector<LatencyHistogram> hists_;
  std::int64_t requests_ = 0;
  std::int64_t skipped_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t balancer_errors_ = 0;
  std::array<std::int64_t, kNumSegments> dropped_in_{};
  std::array<std::int64_t, kNumSegments> errored_in_{};
  std::array<std::array<std::int64_t, 6>, kNumSegments> shed_in_{};
  LatencyHistogram kv_wait_hist_{/*min_value_ms=*/0.01,
                                 /*max_value_ms=*/100'000.0,
                                 /*buckets_per_decade=*/20};
  std::int64_t kv_requests_ = 0;
  double kv_degraded_ms_ = 0;
};

}  // namespace ntier::metrics
