#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/request_log.h"

namespace ntier::metrics {

/// Where the time goes: per-request latency decomposed into the four hops
/// the per-request timestamps delimit. During millibottlenecks the connect
/// and balancing segments explode (SYN retransmissions; workers parked in
/// get_endpoint) while the backend segment stays modest — the breakdown
/// makes the paper's amplification argument visible per request.
class LatencyBreakdown {
 public:
  enum Segment {
    kConnect = 0,    // first SYN -> accepted by an Apache worker (includes
                     // every retransmission wait)
    kBalancing,      // accepted -> endpoint acquired (queueing + get_endpoint)
    kBackend,        // endpoint acquired -> response back at the Apache
    kReply,          // response at Apache -> response at the client
    kNumSegments,
  };

  static const char* segment_name(Segment s);

  LatencyBreakdown();

  /// Digest a completed-OK record (others are skipped and counted).
  void add(const RequestRecord& rec);
  void add_all(const std::vector<RequestRecord>& records);

  std::int64_t requests() const { return requests_; }
  std::int64_t skipped() const { return skipped_; }

  double mean_ms(Segment s) const { return hist(s).mean(); }
  double p99_ms(Segment s) const { return hist(s).percentile(99); }
  double share(Segment s) const;  // fraction of total mean latency

  const LatencyHistogram& hist(Segment s) const {
    return hists_[static_cast<std::size_t>(s)];
  }

  /// Human-readable table.
  void print(std::ostream& os) const;

 private:
  std::vector<LatencyHistogram> hists_;
  std::int64_t requests_ = 0;
  std::int64_t skipped_ = 0;
};

}  // namespace ntier::metrics
