#pragma once

#include <functional>
#include <utility>

#include "metrics/time_series.h"
#include "sim/simulation.h"

namespace ntier::metrics {

/// Polls a probe function on a fixed interval and records the probed value
/// into a TimeSeries. Used for fine-grained CPU-utilisation and iowait plots
/// (the paper samples at 50 ms granularity).
///
/// A probe firing at t = k·interval measures the interval that just elapsed,
/// so the sample is attributed to window k-1 — which also means the probe
/// firing exactly at the end of a run lands in the run's final window instead
/// of an empty one past it.
class PeriodicSampler {
 public:
  PeriodicSampler(sim::Simulation& simu, sim::SimTime interval,
                  std::function<double()> probe)
      : sim_(simu),
        interval_(interval),
        probe_(std::move(probe)),
        series_(interval) {
    arm();
  }

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  ~PeriodicSampler() { sim_.cancel(pending_); }

  const TimeSeries& series() const { return series_; }

 private:
  void arm() {
    pending_ = sim_.after(interval_, [this] {
      series_.record(sim_.now() - interval_, probe_());
      arm();
    });
  }

  sim::EventId pending_ = sim::kInvalidEventId;

  sim::Simulation& sim_;
  sim::SimTime interval_;
  std::function<double()> probe_;
  TimeSeries series_;
};

}  // namespace ntier::metrics
