#include "metrics/time_series.h"

#include <cassert>
#include <stdexcept>

namespace ntier::metrics {

sim::SimTime checked_window(sim::SimTime window) {
  if (window.ns() <= 0)
    throw std::invalid_argument("metrics window must be positive");
  return window;
}

namespace {
std::size_t window_index(sim::SimTime t, sim::SimTime window) {
  if (t.ns() < 0) throw std::invalid_argument("negative timestamp");
  return static_cast<std::size_t>(t.ns() / window.ns());
}
}  // namespace

void TimeSeries::record(sim::SimTime t, double value) {
  const std::size_t i = window_index(t, window_);
  if (i >= windows_.size()) windows_.resize(i + 1);
  Window& w = windows_[i];
  ++w.count;
  w.sum += value;
  w.min = std::min(w.min, value);
  w.max = std::max(w.max, value);
}

std::int64_t TimeSeries::total_count() const {
  std::int64_t n = 0;
  for (const auto& w : windows_) n += w.count;
  return n;
}

double TimeSeries::total_sum() const {
  double s = 0;
  for (const auto& w : windows_) s += w.sum;
  return s;
}

double TimeSeries::global_max() const {
  double m = 0;
  for (const auto& w : windows_)
    if (w.count) m = std::max(m, w.max);
  return m;
}

void TimeSeries::to_csv(std::ostream& os, const std::string& name) const {
  os << "# series=" << name << "\n";
  os << "window_start_s,count,sum,avg,min,max\n";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    os << window_start(i).to_seconds() << ',' << count(i) << ',' << sum(i)
       << ',' << avg(i) << ',' << min(i) << ',' << max(i) << '\n';
  }
}

// ---------------------------------------------------------------------------

GaugeSeries::Window& GaugeSeries::window_at(std::size_t i) {
  if (i >= windows_.size()) windows_.resize(i + 1);
  return windows_[i];
}

void GaugeSeries::advance(sim::SimTime t) {
  if (t < last_t_) throw std::invalid_argument("GaugeSeries: time went backwards");
  // Spread last_value_ over [last_t_, t), window by window.
  while (last_t_ < t) {
    const std::size_t i = window_index(last_t_, window_);
    const sim::SimTime wend = window_ * static_cast<std::int64_t>(i + 1);
    const sim::SimTime seg_end = std::min(wend, t);
    const sim::SimTime span = seg_end - last_t_;
    Window& w = window_at(i);
    w.integral += last_value_ * static_cast<double>(span.ns());
    w.covered += span;
    w.max = std::max(w.max, last_value_);
    w.touched = true;
    last_t_ = seg_end;
  }
}

void GaugeSeries::set(sim::SimTime t, double value) {
  advance(t);
  last_value_ = value;
  // Make the new value visible to the window containing t (max semantics),
  // even if it changes again within the same instant.
  const std::size_t i = window_index(t, window_);
  Window& w = window_at(i);
  w.max = std::max(w.max, value);
  w.touched = true;
}

double GaugeSeries::max(std::size_t i) const {
  if (i >= windows_.size() || !windows_[i].touched) return 0.0;
  return windows_[i].max;
}

double GaugeSeries::time_avg(std::size_t i) const {
  if (i >= windows_.size()) return 0.0;
  const Window& w = windows_[i];
  if (w.covered.ns() == 0) return 0.0;
  return w.integral / static_cast<double>(w.covered.ns());
}

double GaugeSeries::global_max() const {
  double m = 0;
  for (const auto& w : windows_)
    if (w.touched) m = std::max(m, w.max);
  return m;
}

void GaugeSeries::to_csv(std::ostream& os, const std::string& name) const {
  os << "# gauge=" << name << "\n";
  os << "window_start_s,avg,max\n";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    os << window_start(i).to_seconds() << ',' << time_avg(i) << ',' << max(i)
       << '\n';
  }
}

}  // namespace ntier::metrics
