#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ntier::metrics {

/// Log-bucketed latency histogram. Buckets are geometric with a configurable
/// number of sub-buckets per decade, spanning [min_value, max_value]; values
/// outside are clamped into the first/last bucket. This is how Fig. 4
/// (frequency of requests by response time) is rendered, and where the
/// percentile / VLRT-fraction numbers of Table I come from.
class LatencyHistogram {
 public:
  /// Defaults: 0.1 ms .. 100 s, 20 buckets per decade (≈12 % resolution).
  explicit LatencyHistogram(double min_value_ms = 0.1,
                            double max_value_ms = 100'000.0,
                            int buckets_per_decade = 20);

  void record(double value_ms);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min_recorded() const { return min_rec_; }
  double max_recorded() const { return max_rec_; }

  /// p in [0, 100]. Returns the upper bound of the bucket containing the
  /// p-th percentile (0 when empty).
  double percentile(double p) const;

  /// Number / fraction of samples with value > threshold (e.g. VLRT > 1000).
  /// The threshold is snapped to its containing bucket (the straddling
  /// bucket counts as "above"), so count_above + the "below" complement is
  /// a partition: every recorded sample is counted on exactly one side.
  std::int64_t count_above(double threshold_ms) const;
  double fraction_above(double threshold_ms) const;
  /// Fraction with value < threshold (e.g. "normal" < 10 ms). Exact
  /// complement of fraction_above at the same threshold.
  double fraction_below(double threshold_ms) const;

  std::size_t num_buckets() const { return counts_.size(); }
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const { return bucket_lower(i + 1); }
  std::int64_t bucket_count(std::size_t i) const { return counts_[i]; }

  /// Merge another histogram with identical bucketisation.
  void merge(const LatencyHistogram& other);

  /// CSV: bucket_lower_ms,bucket_upper_ms,count
  void to_csv(std::ostream& os, const std::string& name) const;

 private:
  std::size_t bucket_index(double v) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;  // buckets per log10 unit
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_rec_ = 0;
  double max_rec_ = 0;
};

}  // namespace ntier::metrics
