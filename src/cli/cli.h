#pragma once

#include <optional>
#include <string>
#include <vector>

#include "experiment/config.h"
#include "obs/trace_io.h"

namespace ntier::cli {

/// Parsed command line of the `ntier_run` tool.
struct CliOptions {
  experiment::ExperimentConfig config;
  std::string json_path;   // write a RunSummary JSON here when non-empty
  std::string csv_dir;     // dump tier queue series here when non-empty
  std::string record_trace_path;  // save the arrival trace of the run
  std::string replay_trace_path;  // drive the run from a saved trace
  std::string trace_gen_spec;     // synthesize a trace from this spec
  std::string trace_out_path;     // write the generated trace here and exit
  double replay_timeout_ms = 0;   // open-loop client patience (0 = forever)
  double replay_scale = 0;        // time-scale factor for the replay (0 = 1x)
  std::string trace_path;  // write the cross-tier event trace here
  obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
  bool chaos = false;             // inject a seeded randomized fault schedule
  std::uint64_t chaos_seed = 1;
  bool resilience = false;        // prober + breaker + budgeted retries
  std::string gray_fault;         // "" | data_path | link | replica
  int sweep_seeds = 0;     // > 0: run that many seed-forked replicas
  int jobs = 1;            // sweep worker threads (output is jobs-invariant)
  bool quiet = false;      // suppress the human-readable report
  bool help = false;
};

/// Result of parsing: options on success, an error message otherwise.
struct ParseResult {
  std::optional<CliOptions> options;
  std::string error;
  bool ok() const { return options.has_value(); }
};

/// Parse `ntier_run` flags into an ExperimentConfig. Unknown flags and
/// malformed values produce an error (never a partial config). See
/// usage_text() for the accepted flags.
ParseResult parse_cli(const std::vector<std::string>& args);
ParseResult parse_cli(int argc, char** argv);

std::string usage_text();

/// Run the configured experiment and emit the requested outputs. Returns a
/// process exit code.
int run_cli(const CliOptions& options);

}  // namespace ntier::cli
