#include "cli/cli.h"

#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "control/overload.h"
#include "experiment/chaos.h"
#include "experiment/experiment.h"
#include "lb/probe_policy.h"
#include "experiment/report.h"
#include "experiment/summary.h"
#include "experiment/sweep.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"

namespace ntier::cli {

namespace {

bool parse_int(const std::string& s, long long& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

// from_chars, not std::stod: stod honours the global locale (a comma-decimal
// locale breaks "--zipf-s 0.8") and accepts trailing garbage ("1.5abc").
// "nan"/"inf" parse but make no sense as flag values, so reject them too.
bool parse_double(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

std::optional<lb::MechanismKind> parse_mechanism(const std::string& s) {
  using lb::MechanismKind;
  if (s == "blocking") return MechanismKind::kBlocking;
  if (s == "modified" || s == "non_blocking") return MechanismKind::kNonBlocking;
  if (s == "queueing") return MechanismKind::kQueueing;
  return std::nullopt;
}

std::optional<experiment::StallSource> parse_source(const std::string& s) {
  using experiment::StallSource;
  if (s == "pdflush") return StallSource::kPdflush;
  if (s == "gc") return StallSource::kGcPause;
  if (s == "dvfs") return StallSource::kDvfs;
  if (s == "vm") return StallSource::kVmConsolidation;
  return std::nullopt;
}

/// --sweep-seeds path: replicate the fully-resolved config (chaos and
/// resilience already merged in) across derived seeds and report the
/// cross-run statistics instead of a single RunSummary.
int run_sweep(const CliOptions& options, experiment::ExperimentConfig cfg) {
  experiment::SweepConfig sc;
  sc.base = std::move(cfg);
  sc.num_runs = options.sweep_seeds;
  sc.jobs = options.jobs;
  if (!options.quiet)
    std::cout << "sweeping " << sc.num_runs << " seeds ("
              << options.jobs << " jobs) of " << experiment::describe(sc.base)
              << "\n";
  experiment::SweepRunner runner(std::move(sc));
  const experiment::AggregateSummary agg = runner.run();
  if (!options.quiet) agg.print_table(std::cout);
  if (!options.json_path.empty()) {
    std::ofstream f(options.json_path);
    if (!f) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return 1;
    }
    agg.to_json(f);
  }
  if (!options.csv_dir.empty()) {
    try {
      std::filesystem::create_directories(options.csv_dir);
      std::ofstream a(options.csv_dir + "/sweep_aggregate.csv");
      std::ofstream r(options.csv_dir + "/sweep_runs.csv");
      if (!a || !r) throw std::runtime_error("cannot open output file");
      agg.to_csv(a);
      agg.per_run_csv(r);
    } catch (const std::exception& err) {
      std::cerr << "cannot write sweep CSVs under --csv dir '"
                << options.csv_dir << "': " << err.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

std::string usage_text() {
  return R"(ntier_run — n-tier millibottleneck load-balancing simulator

usage: ntier_run [flags]

topology / scale
  --full                 paper scale (70 000 clients, 180 s)
  --clients N            closed-loop client count     (default 7000)
  --think-ms X           mean think time in ms        (default 700)
  --duration-s X         simulated seconds            (default 60)
  --apaches N            web servers                  (default 4)
  --tomcats N            application servers          (default 4)
  --mysql N              database replicas            (default 1)
  --seed N               RNG seed                     (default 42)

data tier
  --db-tier T            mysql (default) | kv — replace the single-primary
                         MySQL with the replicated sharded KV store (src/kv)
  --kv CFG               KV topology/quorum as key=value pairs: replicas,
                         shards, vnodes, n, r, w, hints
                         (e.g. replicas=5,n=3,r=2,w=2; requires --db-tier kv)
  --zipf-s X             Zipf skew of key popularity  (default 0.8)
  --key-space N          distinct keys drawn by the workload
                         (default 10000 in kv mode)
  --kv-millibottlenecks  correlated injector stalls on n-r+1 members of the
                         hot key's shard (quorum cannot mask the episode)

cache tier (look-aside cache over the KV tier; requires --db-tier kv)
  --cache-tier           interpose per-node LRU+TTL caches between the
                         Tomcat tier and the KV quorum, with invalidate-on-
                         write broadcast and single-flight fill coalescing
  --cache CFG            cache geometry as key=value pairs: nodes, bytes,
                         entry, ttl_ms, inval_queue, coalesce
                         (e.g. nodes=2,bytes=67108864,ttl_ms=10000)
  --cache-bytes N        memory per cache node in bytes
  --cache-ttl-ms X       entry time-to-live in ms (the staleness backstop
                         for dropped invalidations)
  --cache-coalesce B     on | off — single-flight fill coalescing

policy & mechanism under test
  --policy P             total_request | total_traffic | current_load |
                         sessions | round_robin | random | two_choices |
                         power_of_d (alias po2d) | prequal
  --mechanism M          blocking | modified | queueing
  --sticky               enable sticky sessions
  --db-policy P          replica-selection policy for the DB router
  --db-mechanism M       blocking | modified | queueing (default)

probing (power_of_d / prequal; auto-enabled by those policies)
  --probe-rate X         probe ticks per second       (default 50)
  --probe-d N            targets probed per tick      (default 3)
  --probe-staleness X    probe result lifetime in ms  (default 400)

millibottleneck environment
  --no-millibottlenecks  pristine environment (Fig. 1 baseline)
  --stall-source S       pdflush | gc | dvfs | vm
  --bursty X             bursty arrivals with multiplier X
  --mix M                read_write | browse_only

multi-seed sweeps
  --sweep-seeds N        run N replicas with per-replica derived seeds and
                         report mean ± 95% CI per metric plus a pooled
                         latency distribution (composable with trace replay;
                         incompatible with --record-trace / --trace)
  --jobs J               sweep worker threads (default 1); the aggregate
                         output is byte-identical for every J

fault injection & resilience
  --chaos                inject a seeded randomized fault schedule (crashes,
                         link faults, pool leaks, disk degradation, stalls)
  --chaos-seed N         fault-schedule seed (implies --chaos, default 1)
  --resilience           health probing + circuit breaker + budgeted retries
  --gray-fault K         data_path | link | replica — schedule one seeded
                         gray fault: the data path degrades while health
                         probes, the circuit breaker and piggybacked load
                         reports keep seeing a healthy node (replica
                         requires --db-tier kv; composes with --chaos)
  --recovery MODE        on | off (default) — recovery orchestration:
                         declare sustained-degradation episodes against the
                         run's own baseline and apply staged interventions
                         (retry suppression, hard shedding, cache refill
                         gating, breaker reset at step-down)

overload control
  --overload MODE        none | deadline | admission | codel | full —
                         deadline propagation, AIMD admission limiting, and
                         CoDel sojourn shedding across all tiers
  --deadline-ms X        client response-time budget (default 1000; only
                         with --overload deadline|full)
  --priority-mix M       uniform | rubbos — rubbos stamps per-interaction
                         brownout priorities (only with --overload
                         admission|full)

traces (arrival traces: CSV "at_ns,client,interaction[,key,priority]")
  --record-trace FILE    save the run's arrival trace, rich schema (data key
                         + brownout priority ride along)
  --replay-trace FILE    drive the run open-loop from a saved trace
                         (replaces the closed-loop clients; rich traces
                         replay the recorded keys/priorities exactly)
  --trace-replay FILE    alias of --replay-trace
  --trace-gen SPEC       synthesize a production-shaped trace and replay it
                         in-process; SPEC is key=value pairs: seed, duration,
                         base-rps, diurnal-amplitude, diurnal-period,
                         flash-at, flash-duration, flash-multiplier,
                         session-mean, think-mean, abandon-p
                         (e.g. duration=60,base-rps=2000,diurnal-amplitude=0.3,
                         flash-at=30,flash-multiplier=2)
  --trace-out FILE       with --trace-gen: write the generated trace to FILE
                         and exit without running (a replayable artifact)
  --replay-timeout-ms X  open-loop client patience: replayed requests
                         unanswered this long are abandoned (default: wait
                         forever)
  --replay-scale X       time-scale the trace before replay (0.5 = 2x rate)
  --trace FILE           write the cross-tier event trace (client sends,
                         SYN retransmits, backlog drops, get_endpoint
                         polling, backend service, pdflush episodes, ...)
  --trace-format F       jsonl (default; ntier_trace's input) | chrome
                         (Perfetto / chrome://tracing)

observability
  --telemetry            streaming per-tier instruments (multi-resolution
                         timelines + per-window quantile sketches); adds
                         sketch quantiles to the summary and, with --csv,
                         writes telemetry.csv
  --detect               online millibottleneck detection during the run,
                         scored against the causal-chain ground truth
  --trace-sample S       full (default) | tail — tail keeps only
                         detector-marked episode windows, VLRT requests
                         end to end and a deterministic head sample
                         (requires --detect and --trace)

output
  --json FILE            write the run summary as JSON
  --csv DIR              dump tier queue/VLRT series as CSV
  --quiet                suppress the human-readable report
  --help                 this text
)";
}

ParseResult parse_cli(const std::vector<std::string>& args) {
  CliOptions o;
  o.config = experiment::ExperimentConfig::scaled(0.1);
  o.config.label = "ntier_run";

  auto fail = [](const std::string& msg) {
    ParseResult r;
    r.error = msg;
    return r;
  };

  bool overload_set = false;
  control::OverloadMode overload_mode = control::OverloadMode::kNone;
  double deadline_ms = 0;    // 0 = not given
  bool priority_rubbos = false;
  bool kv_config_set = false;
  bool zipf_set = false;
  bool key_space_set = false;
  bool cache_flags_set = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[++i];
      return true;
    };
    std::string v;
    long long n = 0;
    double x = 0;

    if (a == "--help" || a == "-h") {
      o.help = true;
    } else if (a == "--full") {
      const auto paper = experiment::ExperimentConfig::paper_scale();
      o.config.num_clients = paper.num_clients;
      o.config.think_mean = paper.think_mean;
      o.config.duration = paper.duration;
      o.config.warmup = paper.warmup;
    } else if (a == "--clients") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --clients");
      o.config.num_clients = static_cast<int>(n);
    } else if (a == "--think-ms") {
      if (!value(v) || !parse_double(v, x) || x <= 0) return fail("bad --think-ms");
      o.config.think_mean = sim::SimTime::from_millis(x);
    } else if (a == "--duration-s") {
      if (!value(v) || !parse_double(v, x) || x <= 0) return fail("bad --duration-s");
      o.config.duration = sim::SimTime::from_seconds(x);
    } else if (a == "--apaches") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --apaches");
      o.config.num_apaches = static_cast<int>(n);
    } else if (a == "--tomcats") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --tomcats");
      o.config.num_tomcats = static_cast<int>(n);
    } else if (a == "--mysql") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --mysql");
      o.config.num_mysql = static_cast<int>(n);
    } else if (a == "--seed") {
      if (!value(v) || !parse_int(v, n) || n < 0) return fail("bad --seed");
      o.config.seed = static_cast<std::uint64_t>(n);
    } else if (a == "--db-tier") {
      if (!value(v)) return fail("missing --db-tier value");
      server::DbTier tier;
      if (!server::db_tier_from_string(v, &tier))
        return fail("unknown db tier: " + v + " (expected mysql|kv)");
      o.config.db_tier = tier;
    } else if (a == "--kv") {
      if (!value(v)) return fail("missing --kv value");
      std::string err;
      const auto kc = kv::kv_config_from_string(v, &err);
      if (!kc) return fail("bad --kv: " + err);
      o.config.kv = *kc;
      kv_config_set = true;
    } else if (a == "--zipf-s") {
      if (!value(v) || !parse_double(v, x) || x < 0) return fail("bad --zipf-s");
      o.config.workload.zipf_s = x;
      zipf_set = true;
    } else if (a == "--key-space") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --key-space");
      o.config.workload.key_space = static_cast<std::uint64_t>(n);
      key_space_set = true;
    } else if (a == "--kv-millibottlenecks") {
      o.config.kv_millibottlenecks = true;
    } else if (a == "--cache-tier") {
      o.config.cache_tier = true;
    } else if (a == "--cache") {
      if (!value(v)) return fail("missing --cache value");
      std::string err;
      const auto cc = cache::cache_config_from_string(v, &err);
      if (!cc) return fail("bad --cache: " + err);
      o.config.cache = *cc;
      cache_flags_set = true;
    } else if (a == "--cache-bytes") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --cache-bytes");
      o.config.cache.bytes = static_cast<std::uint64_t>(n);
      cache_flags_set = true;
    } else if (a == "--cache-ttl-ms") {
      if (!value(v) || !parse_double(v, x) || x <= 0)
        return fail("bad --cache-ttl-ms");
      o.config.cache.ttl = sim::SimTime::from_millis(x);
      cache_flags_set = true;
    } else if (a == "--cache-coalesce") {
      if (!value(v)) return fail("missing --cache-coalesce value");
      if (v == "on")
        o.config.cache.coalesce = true;
      else if (v == "off")
        o.config.cache.coalesce = false;
      else
        return fail("bad --cache-coalesce: " + v + " (expected on|off)");
      cache_flags_set = true;
    } else if (a == "--policy") {
      if (!value(v)) return fail("missing --policy value");
      const auto p = lb::policy_from_string(v);
      if (!p) return fail("unknown policy: " + v);
      o.config.policy = *p;
    } else if (a == "--mechanism") {
      if (!value(v)) return fail("missing --mechanism value");
      const auto m = parse_mechanism(v);
      if (!m) return fail("unknown mechanism: " + v);
      o.config.mechanism = *m;
    } else if (a == "--db-policy") {
      if (!value(v)) return fail("missing --db-policy value");
      const auto p = lb::policy_from_string(v);
      if (!p) return fail("unknown db policy: " + v);
      o.config.db_router.policy = *p;
    } else if (a == "--db-mechanism") {
      if (!value(v)) return fail("missing --db-mechanism value");
      const auto m = parse_mechanism(v);
      if (!m) return fail("unknown db mechanism: " + v);
      o.config.db_router.mechanism = *m;
    } else if (a == "--sticky") {
      o.config.sticky_sessions = true;
    } else if (a == "--no-millibottlenecks") {
      o.config.tomcat_millibottlenecks = false;
    } else if (a == "--stall-source") {
      if (!value(v)) return fail("missing --stall-source value");
      const auto src = parse_source(v);
      if (!src) return fail("unknown stall source: " + v);
      o.config.tomcat_stall_source = *src;
    } else if (a == "--bursty") {
      if (!value(v) || !parse_double(v, x) || x < 1.0) return fail("bad --bursty");
      o.config.bursty_workload = true;
      o.config.burst_multiplier = x;
    } else if (a == "--mix") {
      if (!value(v)) return fail("missing --mix value");
      if (v == "read_write")
        o.config.workload.mix = workload::Mix::kReadWrite;
      else if (v == "browse_only")
        o.config.workload.mix = workload::Mix::kBrowseOnly;
      else
        return fail("unknown mix: " + v);
    } else if (a == "--chaos") {
      o.chaos = true;
    } else if (a == "--chaos-seed") {
      if (!value(v) || !parse_int(v, n) || n < 0) return fail("bad --chaos-seed");
      o.chaos = true;
      o.chaos_seed = static_cast<std::uint64_t>(n);
    } else if (a == "--resilience") {
      o.resilience = true;
    } else if (a == "--gray-fault") {
      if (!value(v)) return fail("missing --gray-fault value");
      if (v != "data_path" && v != "link" && v != "replica")
        return fail("unknown gray fault: " + v +
                    " (expected data_path|link|replica)");
      o.gray_fault = v;
    } else if (a == "--recovery") {
      if (!value(v)) return fail("missing --recovery value");
      if (v == "on")
        o.config.recovery.enabled = true;
      else if (v == "off")
        o.config.recovery.enabled = false;
      else
        return fail("bad --recovery: " + v + " (expected on|off)");
    } else if (a == "--overload") {
      if (!value(v)) return fail("missing --overload value");
      if (!control::parse_overload_mode(v, &overload_mode))
        return fail("unknown overload mode: " + v +
                    " (expected none|deadline|admission|codel|full)");
      overload_set = true;
    } else if (a == "--deadline-ms") {
      if (!value(v) || !parse_double(v, x) || x <= 0)
        return fail("bad --deadline-ms");
      deadline_ms = x;
    } else if (a == "--priority-mix") {
      if (!value(v)) return fail("missing --priority-mix value");
      if (v == "rubbos")
        priority_rubbos = true;
      else if (v != "uniform")
        return fail("unknown priority mix: " + v +
                    " (expected uniform|rubbos)");
    } else if (a == "--sweep-seeds") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --sweep-seeds");
      o.sweep_seeds = static_cast<int>(n);
    } else if (a == "--jobs") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --jobs");
      o.jobs = static_cast<int>(n);
    } else if (a == "--probe-rate") {
      if (!value(v) || !parse_double(v, x) || x <= 0) return fail("bad --probe-rate");
      o.config.probe.rate_hz = x;
    } else if (a == "--probe-d") {
      if (!value(v) || !parse_int(v, n) || n <= 0) return fail("bad --probe-d");
      o.config.probe.d = static_cast<int>(n);
    } else if (a == "--probe-staleness") {
      if (!value(v) || !parse_double(v, x) || x <= 0)
        return fail("bad --probe-staleness");
      o.config.probe.staleness = sim::SimTime::from_millis(x);
    } else if (a == "--trace") {
      if (!value(o.trace_path)) return fail("missing --trace value");
      o.config.event_trace = true;
    } else if (a == "--trace-format") {
      if (!value(v)) return fail("missing --trace-format value");
      const auto f = obs::parse_trace_format(v);
      if (!f) return fail("unknown trace format: " + v);
      o.trace_format = *f;
    } else if (a == "--telemetry") {
      o.config.telemetry.enabled = true;
    } else if (a == "--detect") {
      o.config.online_detect = true;
    } else if (a == "--trace-sample") {
      if (!value(v)) return fail("missing --trace-sample value");
      if (v == "tail")
        o.config.trace_tail.enabled = true;
      else if (v != "full")
        return fail("unknown trace sample mode: " + v + " (expected full|tail)");
    } else if (a == "--record-trace") {
      if (!value(o.record_trace_path)) return fail("missing --record-trace value");
    } else if (a == "--replay-trace" || a == "--trace-replay") {
      if (!value(o.replay_trace_path)) return fail("missing " + a + " value");
    } else if (a == "--trace-gen") {
      if (!value(o.trace_gen_spec)) return fail("missing --trace-gen value");
      std::string err;
      if (!workload::trace_gen_spec_from_string(o.trace_gen_spec, &err))
        return fail("bad --trace-gen: " + err);
    } else if (a == "--trace-out") {
      if (!value(o.trace_out_path)) return fail("missing --trace-out value");
    } else if (a == "--replay-timeout-ms") {
      if (!value(v) || !parse_double(v, x) || x <= 0)
        return fail("bad --replay-timeout-ms");
      o.replay_timeout_ms = x;
    } else if (a == "--replay-scale") {
      if (!value(v) || !parse_double(v, x) || x <= 0)
        return fail("bad --replay-scale");
      o.replay_scale = x;
    } else if (a == "--json") {
      if (!value(o.json_path)) return fail("missing --json value");
    } else if (a == "--csv") {
      if (!value(o.csv_dir)) return fail("missing --csv value");
    } else if (a == "--quiet") {
      o.quiet = true;
    } else {
      return fail("unknown flag: " + a);
    }
  }
  if (o.sweep_seeds > 0 &&
      (!o.record_trace_path.empty() || !o.trace_path.empty()))
    return fail(
        "--sweep-seeds cannot be combined with --record-trace or --trace "
        "(those are per-run artifacts; replaying a trace across a sweep is "
        "fine)");
  if (!o.trace_gen_spec.empty() && !o.replay_trace_path.empty())
    return fail(
        "--trace-gen and --replay-trace both name a replay source; pick one "
        "(generate to a file with --trace-out, then replay it)");
  if (!o.trace_out_path.empty() && o.trace_gen_spec.empty())
    return fail("--trace-out requires --trace-gen (nothing else writes it)");
  if (!o.record_trace_path.empty() &&
      (!o.replay_trace_path.empty() || !o.trace_gen_spec.empty()))
    return fail(
        "--record-trace cannot be combined with a replay source (the "
        "closed loop is idled during replay, so there is nothing to record)");
  if ((o.replay_timeout_ms > 0 || o.replay_scale > 0) &&
      o.replay_trace_path.empty() && o.trace_gen_spec.empty())
    return fail(
        "--replay-timeout-ms / --replay-scale require --replay-trace or "
        "--trace-gen (they only affect open-loop replay)");
  if (o.config.trace_tail.enabled &&
      (!o.config.online_detect || o.trace_path.empty()))
    return fail(
        "--trace-sample tail requires --detect (the detector marks the "
        "episode windows worth keeping) and --trace FILE (the sampled "
        "output)");
  if (o.gray_fault == "replica" && o.config.db_tier != server::DbTier::kKv)
    return fail(
        "--gray-fault replica requires --db-tier kv (the slow-but-alive "
        "replica lives in the KV quorum)");
  if (o.config.db_tier != server::DbTier::kKv &&
      (kv_config_set || zipf_set || key_space_set ||
       o.config.kv_millibottlenecks))
    return fail(
        "--kv, --zipf-s, --key-space, and --kv-millibottlenecks require "
        "--db-tier kv (the MySQL tier ignores key-level routing)");
  if (cache_flags_set && !o.config.cache_tier)
    return fail(
        "--cache, --cache-bytes, --cache-ttl-ms, and --cache-coalesce "
        "require --cache-tier (no cache tier is built otherwise)");
  if (o.config.cache_tier && o.config.db_tier != server::DbTier::kKv)
    return fail(
        "--cache-tier requires --db-tier kv (the cache fronts the "
        "replicated KV store; the MySQL tier has no key-level reads)");
  if (o.config.cache_tier) {
    std::string err;
    if (!o.config.cache.validate(&err)) return fail("bad cache config: " + err);
  }
  using control::OverloadMode;
  if (deadline_ms > 0 && (!overload_set ||
                          (overload_mode != OverloadMode::kDeadline &&
                           overload_mode != OverloadMode::kFull)))
    return fail(
        "--deadline-ms requires --overload deadline or --overload full "
        "(no tier enforces deadlines otherwise)");
  if (priority_rubbos && (!overload_set ||
                          (overload_mode != OverloadMode::kAdmission &&
                           overload_mode != OverloadMode::kFull)))
    return fail(
        "--priority-mix rubbos requires --overload admission or --overload "
        "full (brownout priorities need the admission limiter)");
  if (overload_set) {
    o.config.overload = control::make_overload(
        overload_mode, deadline_ms > 0 ? sim::SimTime::from_millis(deadline_ms)
                                       : sim::SimTime::seconds(1));
    if (priority_rubbos)
      o.config.workload.priority_mix = workload::PriorityMix::kRubbos;
  }
  ParseResult r;
  r.options = std::move(o);
  return r;
}

ParseResult parse_cli(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse_cli(args);
}

int run_cli(const CliOptions& options) {
  if (options.help) {
    std::cout << usage_text();
    return 0;
  }
  experiment::ExperimentConfig cfg = options.config;

  // -- replay source: a saved trace, or one synthesized from --trace-gen ------
  std::shared_ptr<workload::ArrivalTrace> trace;
  if (!options.trace_gen_spec.empty()) {
    const auto spec =
        workload::trace_gen_spec_from_string(options.trace_gen_spec, nullptr);
    const workload::TraceGenerator gen(*spec);  // validated by parse_cli
    const workload::RubbosWorkload gen_workload(cfg.workload);
    auto generated = gen.generate(gen_workload);
    if (!options.trace_out_path.empty()) {
      // Artifact mode: write the trace and stop — the point is a replayable
      // file, not a run.
      try {
        generated.save_file(options.trace_out_path);
      } catch (const std::exception& err) {
        std::cerr << err.what() << "\n";
        return 1;
      }
      if (!options.quiet)
        std::cout << "generated " << generated.size() << " arrivals ("
                  << spec->to_string() << ") to " << options.trace_out_path
                  << "\n";
      return 0;
    }
    trace = std::make_shared<workload::ArrivalTrace>(std::move(generated));
  } else if (!options.replay_trace_path.empty()) {
    try {
      trace = std::make_shared<workload::ArrivalTrace>(
          workload::ArrivalTrace::load_file(options.replay_trace_path));
    } catch (const std::exception& err) {
      std::cerr << err.what() << "\n";
      return 1;
    }
  }
  if (trace) {
    if (options.replay_scale > 0) trace->scale_time(options.replay_scale);
    // Loaders accept out-of-order rows (edited/merged traces); the replayer
    // does not — restore the sort contract here.
    if (!trace->sorted()) trace->sort();
    cfg.replay_trace = trace;
    if (options.replay_timeout_ms > 0)
      cfg.replay_client_timeout =
          sim::SimTime::from_millis(options.replay_timeout_ms);
    cfg.label += "_replay";
  }

  if (options.resilience) cfg.enable_resilience();
  if (options.chaos) {
    millib::FaultPlanConfig fc;
    // Fit the schedule into the configured run: faults start after the
    // warm-up and the last clear lands before the run ends.
    fc.initial_offset = std::max(cfg.warmup, sim::SimTime::seconds(1));
    fc.horizon = std::max(fc.initial_offset + sim::SimTime::seconds(1),
                          cfg.duration - fc.max_duration);
    cfg.fault_plan.merge(
        millib::FaultPlan::randomized(options.chaos_seed, fc, cfg.num_tomcats));
    cfg.label += "_chaos";
  }
  if (!options.gray_fault.empty()) {
    // One deterministic gray fault, scaled to the measured part of the run:
    // it opens a quarter of the way in and lasts a tenth of the span, so the
    // pre-trigger baseline and the post-clear basin are both observable.
    const double span = (cfg.duration - cfg.warmup).to_seconds();
    millib::FaultSpec spec;
    spec.worker = 0;
    spec.start = cfg.warmup + sim::SimTime::from_seconds(span * 0.25);
    spec.duration = sim::SimTime::from_seconds(span * 0.10);
    spec.severity = 0.9;
    if (options.gray_fault == "data_path") {
      spec.kind = millib::FaultKind::kGrayDataPath;
    } else if (options.gray_fault == "link") {
      spec.kind = millib::FaultKind::kGrayLink;
      spec.extra_latency = sim::SimTime::millis(5);
      spec.loss_probability = 0.3;
    } else {
      spec.kind = millib::FaultKind::kGraySlowReplica;
    }
    cfg.fault_plan.merge(millib::FaultPlan::single(spec));
    cfg.label += "_gray";
  }

  if (options.sweep_seeds > 0) return run_sweep(options, std::move(cfg));

  if (!options.quiet)
    std::cout << "running " << experiment::describe(cfg) << "\n";
  experiment::Experiment e(std::move(cfg));

  workload::ArrivalTrace recorded;
  if (!options.record_trace_path.empty()) {
    e.mutable_clients().set_issue_hook(
        [&recorded](sim::SimTime at, const proto::Request& req) {
          recorded.add_rich(at, req.client, req.interaction, req.key,
                            req.priority);
        });
  }

  e.run();

  const bool replay = e.replayer() != nullptr;
  const metrics::RequestLog& log = e.log();
  auto summary = experiment::summarize(e);

  if (!options.quiet) {
    experiment::print_table1_header(std::cout);
    std::cout << log.summary_row(summary.policy + " + " + summary.mechanism +
                                 (replay ? " (trace replay)" : ""))
              << "\n\n";
    experiment::print_panel(std::cout, "tomcat tier queue", e.tomcat_tier_queue());
    experiment::print_panel(std::cout, "apache tier queue", e.apache_tier_queue());
    std::cout << "p99 " << summary.p99_ms << " ms, p99.9 " << summary.p999_ms
              << " ms, drops " << summary.connection_drops << ", 503s "
              << summary.balancer_errors << "\n";
    if (replay) {
      const auto* rp = e.replayer();
      std::cout << "trace replay: " << summary.trace_arrivals << " arrivals, "
                << rp->issued() << " issued, " << rp->completed_ok()
                << " ok, " << rp->dropped() << " dropped, " << rp->abandoned()
                << " abandoned, " << rp->in_flight()
                << " in flight at horizon\n";
    }
    if (e.chaos()) {
      std::cout << "\nfault schedule (applied/cleared):\n"
                << e.chaos()->trace_string();
    }
    if (options.resilience) {
      std::uint64_t trips = 0, retries = 0, probes = 0, timeouts = 0;
      for (int a = 0; a < e.num_apaches(); ++a) {
        trips += e.apache(a).balancer().breaker_trips();
        retries += e.apache(a).retries();
        if (e.apache(a).prober()) {
          probes += e.apache(a).prober()->probes_sent();
          timeouts += e.apache(a).prober()->probes_timed_out();
        }
      }
      std::cout << "resilience: " << probes << " probes (" << timeouts
                << " timed out), " << trips << " breaker trips, " << retries
                << " retries\n";
    }
    if (!options.gray_fault.empty()) {
      std::cout << "gray fault (" << options.gray_fault << "): "
                << summary.gray_inflated_ops << " gray-inflated ops, "
                << summary.kv_slow_ops << " slow-replica ops\n";
    }
    if (e.recovery()) {
      std::cout << "recovery: " << e.recovery()->stats().to_string() << "\n";
    }
    if (e.config().overload.any()) {
      std::cout << "overload control: goodput " << summary.goodput_rps
                << " req/s (" << summary.completed_within_deadline
                << " within deadline, " << summary.missed_deadline
                << " late), sheds " << summary.admission_sheds << " admission / "
                << summary.brownout_sheds << " brownout / "
                << summary.deadline_sheds << " deadline / "
                << summary.sojourn_sheds << " sojourn, "
                << summary.shed_retries << " retriable-503 retries, "
                << summary.wasted_work_avoided_ms
                << " ms wasted work avoided\n";
    }
    if (e.kv_tier()) {
      const auto& ks = e.kv_tier()->stats();
      std::cout << "kv tier: " << ks.quorum_reads << " quorum reads / "
                << ks.quorum_writes << " quorum writes (mean wait "
                << ks.mean_quorum_wait_ms() << " ms), failed "
                << ks.quorum_failed_reads + ks.quorum_failed_writes
                << " quorum / " << ks.handoff_dropped << " handoff / "
                << ks.migration_shed << " migration-shed, hints "
                << ks.hints_created << " created / " << ks.hints_replayed
                << " replayed, " << ks.read_repairs
                << " read repairs, degraded op time " << ks.degraded_wait_ms
                << " ms\n";
    }
    if (e.cache_tier()) {
      const auto& cs = e.cache_tier()->stats();
      std::cout << "cache tier: " << cs.hits << " hits / " << cs.misses
                << " misses (hit ratio " << cs.hit_ratio() << "), "
                << cs.coalesced_fills << " coalesced fills, invalidations "
                << cs.invalidations_sent << " sent / "
                << cs.invalidations_delivered << " delivered / "
                << cs.invalidations_dropped << " dropped, " << cs.evictions
                << " evictions, " << cs.expirations << " expirations, "
                << cs.storms << " storms\n";
    }
    {
      std::uint64_t sent = 0, replies = 0, timeouts = 0, uses = 0;
      std::uint64_t piggybacked = 0;
      std::uint64_t probe_picks = 0, tiebreaks = 0, fallback_picks = 0;
      double staleness_sum = 0.0;
      bool any_pool = false;
      for (int a = 0; a < e.num_apaches(); ++a) {
        const auto* pool = e.apache(a).probe_pool();
        if (pool) {
          any_pool = true;
          sent += pool->probes_sent();
          replies += pool->replies();
          timeouts += pool->timeouts();
          piggybacked += pool->piggybacked();
          staleness_sum += pool->mean_staleness_at_use_ms() *
                           static_cast<double>(pool->uses());
          uses += pool->uses();
        }
        const auto* aware = dynamic_cast<const lb::ProbeAwarePolicy*>(
            &e.apache(a).balancer().policy());
        if (aware) {
          probe_picks += aware->probe_picks();
          tiebreaks += aware->tiebreak_picks();
          fallback_picks += aware->fallback_picks();
        }
      }
      if (any_pool) {
        std::cout << "probing: " << sent << " probes ("
                  << replies << " replies, " << timeouts << " timed out), "
                  << piggybacked << " piggybacked reports, "
                  << probe_picks << " probe-driven picks, " << tiebreaks
                  << " probed tie-breaks, " << fallback_picks
                  << " current_load fallbacks, mean staleness at use "
                  << (uses ? staleness_sum / static_cast<double>(uses) : 0.0)
                  << " ms\n";
      }
    }
    if (e.online_detector()) {
      std::cout << "online detection: " << summary.online_episodes
                << " episodes (" << summary.online_matched << "/"
                << summary.online_truth_episodes
                << " ground-truth episodes matched, "
                << summary.online_false_positives
                << " false positives), median detection latency "
                << summary.online_median_detection_ms << " ms, "
                << summary.online_episode_vlrts << " VLRTs attributed\n";
    }
    if (e.trace() && e.trace()->tail_enabled()) {
      std::cout << "tail sampling: kept " << summary.trace_events_kept
                << " of " << summary.trace_events_seen << " events ("
                << summary.trace_kept_fraction * 100.0 << "%)\n";
    }
    if (e.telemetry()) {
      std::cout << "telemetry: " << e.telemetry()->size()
                << " instruments, client rt p50/p99/p99.9 "
                << summary.rt_sketch_p50_ms << " / "
                << summary.rt_sketch_p99_ms << " / "
                << summary.rt_sketch_p999_ms << " ms (sketch)\n";
    }
  }
  if (!options.record_trace_path.empty()) {
    std::ofstream f(options.record_trace_path);
    if (!f) {
      std::cerr << "cannot write " << options.record_trace_path << "\n";
      return 1;
    }
    recorded.save(f);
    if (!options.quiet)
      std::cout << "recorded " << recorded.size() << " arrivals to "
                << options.record_trace_path << "\n";
  }
  if (!options.trace_path.empty()) {
    if (!e.trace()) {
      std::cerr << "internal: event trace was not collected\n";
      return 1;
    }
    std::ofstream f(options.trace_path);
    if (!f) {
      std::cerr << "cannot write " << options.trace_path << "\n";
      return 1;
    }
    obs::write_trace(f, *e.trace(), options.trace_format);
    if (!options.quiet) {
      std::cout << "wrote " << e.trace()->size() << " trace events to "
                << options.trace_path;
      if (e.trace()->dropped())
        std::cout << " (ring overwrote " << e.trace()->dropped()
                  << " oldest events; raise trace capacity)";
      std::cout << "\n";
    }
  }
  if (!options.json_path.empty()) {
    std::ofstream f(options.json_path);
    if (!f) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return 1;
    }
    summary.to_json(f);
  }
  if (!options.csv_dir.empty()) {
    try {
      std::filesystem::create_directories(options.csv_dir);
      experiment::write_series_csv(
          options.csv_dir + "/tier_queues.csv", e.config().metric_window,
          {"apache", "tomcat", "mysql"},
          {e.apache_tier_queue(), e.tomcat_tier_queue(), e.mysql_tier_queue()});
      if (e.kv_tier())
        experiment::write_series_csv(options.csv_dir + "/kv_queue.csv",
                                     e.config().metric_window, {"kv"},
                                     {e.kv_tier_queue()});
      experiment::write_series_csv(
          options.csv_dir + "/vlrt.csv", e.config().metric_window, {"vlrt"},
          {experiment::series_count(e.log().vlrt_series(),
                                    e.num_metric_windows())});
      if (e.telemetry()) {
        std::ofstream t(options.csv_dir + "/telemetry.csv");
        if (!t) throw std::runtime_error("cannot open telemetry.csv");
        e.telemetry()->to_csv(t);
      }
    } catch (const std::exception& err) {
      std::cerr << "cannot write CSV series under --csv dir '"
                << options.csv_dir << "': " << err.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace ntier::cli
