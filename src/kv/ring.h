#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ntier::kv {

/// Consistent-hash ring with virtual nodes. Every replica owns `vnodes`
/// deterministic positions (splitmix64 of the (replica, vnode) pair), so
/// the layout is a pure function of (replicas, vnodes) — no RNG stream is
/// consumed and byte-determinism is trivial. Shards hash to a point on the
/// ring; a shard's preference list is the first `n` *distinct* replicas
/// clockwise from its point (Dynamo's walk), and hinted handoff targets are
/// found by continuing the same walk past the preference list.
class HashRing {
 public:
  HashRing(int replicas, int vnodes);

  int num_replicas() const { return replicas_; }

  /// First `n` distinct replicas clockwise from the shard's ring point.
  std::vector<int> preference_list(std::uint64_t shard, int n) const;

  /// First alive replica clockwise from the shard's point that is not in
  /// `exclude` — the hinted-handoff stand-in, or the migration destination.
  /// Returns -1 when no such replica exists.
  int next_alive(std::uint64_t shard, const std::vector<int>& exclude,
                 const std::vector<bool>& alive) const;

  /// The ring position a shard hashes to (exposed for tests).
  static std::uint64_t shard_point(std::uint64_t shard);

 private:
  /// Walk clockwise from the shard point, visiting replicas in first-vnode
  /// order, calling `fn(replica)` until it returns false.
  template <typename Fn>
  void walk(std::uint64_t shard, Fn&& fn) const;

  int replicas_;
  std::vector<std::pair<std::uint64_t, int>> points_;  // sorted (pos, replica)
};

}  // namespace ntier::kv
