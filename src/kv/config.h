#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.h"

namespace ntier::kv {

/// Configuration of the replicated sharded KV data tier (Dynamo-style):
/// `replicas` storage nodes carry `shards` shards on a consistent-hash ring
/// with `vnodes` virtual nodes per replica; each shard lives on `n` replicas
/// and operations complete at `r` (reads) / `w` (writes) acknowledgements.
/// The classic quorum-intersection requirement r + w > n makes every read
/// see the newest completed write, which is what read-repair restores when
/// a quorum diverges after failures.
struct KvConfig {
  int replicas = 4;  // storage nodes in the tier (> n so handoff has a target)
  int shards = 16;
  int vnodes = 8;    // virtual ring positions per replica
  int n = 3;         // preference-list size (copies per shard)
  int r = 2;         // read quorum
  int w = 2;         // write quorum

  /// Hinted handoff: missed writes stashed on a stand-in replica, bounded
  /// per holder; overflow is counted as handoff_dropped (no silent loss).
  std::size_t hint_capacity = 4096;
  /// CPU demand of stashing one hint on the stand-in.
  sim::SimTime hint_store_demand = sim::SimTime::micros(20);
  /// Pacing between replayed hints on recovery — the replay itself is a
  /// load spike on the recovering replica, deliberately visible.
  sim::SimTime hint_replay_gap = sim::SimTime::micros(200);

  /// Shard migration (seeded rebalancing): the source and destination burn
  /// one chunk of CPU every interval for the fault's duration — the
  /// rebalancing millibottleneck — and writes landing inside the final
  /// handover window are shed (migration_shed).
  sim::SimTime migration_chunk_interval = sim::SimTime::millis(5);
  sim::SimTime migration_chunk_demand = sim::SimTime::millis(2);
  std::uint32_t migration_bytes_per_chunk = 262'144;
  sim::SimTime migration_handover = sim::SimTime::millis(50);

  /// Validate the quorum geometry; on failure fills `error` with the reason
  /// (mirrors the CLI's rejection-message contract).
  bool validate(std::string* error) const;

  /// Canonical "replicas=4,shards=16,vnodes=8,n=3,r=2,w=2" rendering —
  /// round-trips through kv_config_from_string.
  std::string to_string() const;
};

/// Parse "key=value,key=value" (keys: replicas, shards, vnodes, n, r, w,
/// hints) over the defaults. Returns nullopt and fills `error` on unknown
/// keys, malformed numbers, or invalid quorum geometry.
std::optional<KvConfig> kv_config_from_string(const std::string& s,
                                              std::string* error);

}  // namespace ntier::kv
