#include "kv/replica.h"

#include <algorithm>

namespace ntier::kv {

KvReplica::KvReplica(sim::Simulation& simu, os::Node& node, int id,
                     KvReplicaConfig config, sim::SimTime trace_window)
    : sim_(simu),
      node_(node),
      id_(id),
      config_(config),
      queue_trace_(trace_window) {}

void KvReplica::execute(sim::SimTime demand, std::function<void()> done) {
  ++resident_;
  queue_trace_.set(sim_.now(), resident_);
  if (executing_ < config_.max_connections) {
    start(demand, std::move(done));
  } else {
    waiting_.emplace_back(demand, std::move(done));
  }
}

void KvReplica::set_slow(double severity) {
  severity = std::clamp(severity, 0.0, 0.99);
  slow_factor_ = 1.0 / (1.0 - severity);
}

void KvReplica::start(sim::SimTime demand, std::function<void()> done) {
  ++executing_;
  if (slow()) {
    demand = sim::SimTime::from_seconds(demand.to_seconds() * slow_factor_);
    ++slow_ops_;
  }
  node_.cpu().submit(demand, [this, done = std::move(done)] {
    on_op_done();
    if (done) done();
  });
}

void KvReplica::on_op_done() {
  --executing_;
  --resident_;
  ++served_;
  queue_trace_.set(sim_.now(), resident_);
  if (!waiting_.empty() && executing_ < config_.max_connections) {
    auto [demand, done] = std::move(waiting_.front());
    waiting_.pop_front();
    start(demand, std::move(done));
  }
}

std::uint64_t KvReplica::version_of(std::uint64_t key) const {
  const auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

bool KvReplica::apply_write(std::uint64_t key, std::uint64_t version) {
  auto& stored = versions_[key];
  if (version <= stored) return false;
  stored = version;
  ++writes_applied_;
  if (config_.log_bytes_per_write > 0)
    node_.page_cache().write_dirty(config_.log_bytes_per_write);
  return true;
}

void KvReplica::dirty_bytes(std::uint32_t bytes) {
  if (bytes > 0) node_.page_cache().write_dirty(bytes);
}

bool KvReplica::store_hint(const Hint& h) {
  if (hints_.size() >= config_.hint_capacity) return false;
  hints_.push_back(h);
  return true;
}

std::vector<Hint> KvReplica::take_hints_for(int home) {
  std::vector<Hint> out;
  std::deque<Hint> keep;
  for (auto& h : hints_) {
    if (h.home == home)
      out.push_back(h);
    else
      keep.push_back(h);
  }
  hints_.swap(keep);
  return out;
}

}  // namespace ntier::kv
