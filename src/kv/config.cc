#include "kv/config.h"

#include <charconv>
#include <sstream>

namespace ntier::kv {

bool KvConfig::validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error) *error = "kv config: " + why;
    return false;
  };
  if (replicas < 1) return fail("replicas must be >= 1");
  if (shards < 1) return fail("shards must be >= 1");
  if (vnodes < 1) return fail("vnodes must be >= 1");
  if (n < 1) return fail("n must be >= 1");
  if (n > replicas)
    return fail("n=" + std::to_string(n) + " exceeds replicas=" +
                std::to_string(replicas));
  if (r < 1 || r > n)
    return fail("r=" + std::to_string(r) + " must be in [1, n=" +
                std::to_string(n) + "]");
  if (w < 1 || w > n)
    return fail("w=" + std::to_string(w) + " must be in [1, n=" +
                std::to_string(n) + "]");
  if (r + w <= n)
    return fail("r+w must exceed n for quorum intersection (r=" +
                std::to_string(r) + ", w=" + std::to_string(w) + ", n=" +
                std::to_string(n) + ")");
  return true;
}

std::string KvConfig::to_string() const {
  std::ostringstream os;
  os << "replicas=" << replicas << ",shards=" << shards << ",vnodes=" << vnodes
     << ",n=" << n << ",r=" << r << ",w=" << w;
  return os.str();
}

std::optional<KvConfig> kv_config_from_string(const std::string& s,
                                              std::string* error) {
  KvConfig cfg;
  auto fail = [error](const std::string& why) {
    if (error) *error = "kv config: " + why;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return fail("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    int parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size())
      return fail("bad integer for '" + key + "': '" + value + "'");
    if (key == "replicas") cfg.replicas = parsed;
    else if (key == "shards") cfg.shards = parsed;
    else if (key == "vnodes") cfg.vnodes = parsed;
    else if (key == "n") cfg.n = parsed;
    else if (key == "r") cfg.r = parsed;
    else if (key == "w") cfg.w = parsed;
    else if (key == "hints") {
      if (parsed < 0) return fail("hints must be >= 0");
      cfg.hint_capacity = static_cast<std::size_t>(parsed);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  std::string why;
  if (!cfg.validate(&why)) {
    if (error) *error = why;
    return std::nullopt;
  }
  return cfg;
}

}  // namespace ntier::kv
