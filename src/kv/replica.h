#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/time_series.h"
#include "os/node.h"
#include "sim/simulation.h"

namespace ntier::kv {

struct KvReplicaConfig {
  /// Server-side concurrency cap; work beyond it queues FIFO (the shard
  /// queue the hot-key scenarios make visible).
  int max_connections = 256;
  /// Dirty bytes per applied write (commit log), feeding the node's page
  /// cache so pdflush-driven millibottlenecks reach the data tier.
  std::uint32_t log_bytes_per_write = 800;
  /// Bound on hints held for crashed peers (KvConfig::hint_capacity).
  std::size_t hint_capacity = 4096;
};

/// One missed write stashed on a stand-in replica, replayed on recovery.
struct Hint {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  sim::SimTime demand;  // the original write's CPU demand, re-run on replay
  int home = -1;        // the replica the write was meant for
};

/// One storage node of the KV tier: a versioned key store executing CPU
/// demands on its os::Node (FIFO beyond the connection cap, mirroring
/// MySqlServer), plus a bounded hinted-handoff queue it holds for crashed
/// peers. Crash/restart follows the Tomcat pattern: a crashed replica is
/// fenced by the tier's failure detector; in-flight work drains normally.
class KvReplica {
 public:
  KvReplica(sim::Simulation& simu, os::Node& node, int id,
            KvReplicaConfig config = {},
            sim::SimTime trace_window = sim::SimTime::millis(50));

  KvReplica(const KvReplica&) = delete;
  KvReplica& operator=(const KvReplica&) = delete;

  /// Execute one operation of the given CPU demand; `done` fires on
  /// completion (storage reads/writes happen inside `done`, at completion
  /// time, so queueing delay is part of the operation).
  void execute(sim::SimTime demand, std::function<void()> done);

  // -- versioned store --------------------------------------------------------
  std::uint64_t version_of(std::uint64_t key) const;
  /// Apply a write if `version` advances the stored one; returns true when
  /// the store changed (dirties log_bytes_per_write on the node).
  bool apply_write(std::uint64_t key, std::uint64_t version);
  /// Migration ingest: bulk bytes dirtied without a key-level write.
  void dirty_bytes(std::uint32_t bytes);

  // -- crash / restart --------------------------------------------------------
  void crash() { crashed_ = true; }
  void restart() { crashed_ = false; }
  bool crashed() const { return crashed_; }

  // -- gray fault: slow-but-alive -------------------------------------------
  /// Inflate every op's CPU demand by 1/(1-severity) while the replica keeps
  /// answering (never trips the tier's failure detector). Quorum R masks the
  /// slow votes from the failure counters; the tail absorbs them.
  void set_slow(double severity);
  void clear_slow() { slow_factor_ = 1.0; }
  bool slow() const { return slow_factor_ > 1.0; }
  /// Ops executed at inflated demand (chaos accounting).
  std::uint64_t slow_ops() const { return slow_ops_; }

  // -- hinted handoff (hints this replica HOLDS for others) -------------------
  /// Stash a hint; false when the bounded queue is full.
  bool store_hint(const Hint& h);
  /// Remove and return every held hint destined for `home`, FIFO order.
  std::vector<Hint> take_hints_for(int home);
  std::size_t hints_held() const { return hints_.size(); }

  // -- observability ----------------------------------------------------------
  int id() const { return id_; }
  int resident() const { return resident_; }
  const metrics::GaugeSeries& queue_trace() const { return queue_trace_; }
  void finish_traces() { queue_trace_.finish(sim_.now()); }
  std::uint64_t ops_served() const { return served_; }
  std::uint64_t writes_applied() const { return writes_applied_; }
  os::Node& node() { return node_; }

 private:
  void start(sim::SimTime demand, std::function<void()> done);
  void on_op_done();

  sim::Simulation& sim_;
  os::Node& node_;
  int id_;
  KvReplicaConfig config_;
  bool crashed_ = false;
  double slow_factor_ = 1.0;  // > 1 while a gray slow-replica fault is on
  std::uint64_t slow_ops_ = 0;
  int executing_ = 0;
  int resident_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t writes_applied_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;
  std::deque<std::pair<sim::SimTime, std::function<void()>>> waiting_;
  std::deque<Hint> hints_;
  metrics::GaugeSeries queue_trace_;
};

}  // namespace ntier::kv
