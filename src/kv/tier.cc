#include "kv/tier.h"

#include <algorithm>
#include <utility>

#include "sim/rng.h"

namespace ntier::kv {

KvTier::KvTier(sim::Simulation& simu, std::vector<KvReplica*> replicas,
               KvConfig config, sim::SimTime link_latency)
    : sim_(simu),
      replicas_(std::move(replicas)),
      config_(config),
      link_(link_latency),
      ring_(static_cast<int>(replicas_.size()), config_.vnodes) {
  const auto shards = static_cast<std::size_t>(config_.shards);
  members_.reserve(shards);
  for (int s = 0; s < config_.shards; ++s)
    members_.push_back(ring_.preference_list(static_cast<std::uint64_t>(s),
                                             config_.n));
  alive_.assign(replicas_.size(), true);
  migrations_.assign(shards, Migration{});
  down_members_.assign(shards, 0);
  degraded_since_.assign(shards, sim::SimTime::zero());
  degraded_ms_.assign(shards, 0.0);
}

int KvTier::shard_of(std::uint64_t key) const {
  return static_cast<int>(sim::Rng::mix64(key) %
                          static_cast<std::uint64_t>(config_.shards));
}

std::uint64_t KvTier::hints_held() const {
  std::uint64_t total = 0;
  for (const auto* r : replicas_) total += r->hints_held();
  return total;
}

double KvTier::total_degraded_ms() const {
  double total = 0;
  for (double ms : degraded_ms_) total += ms;
  return total;
}

void KvTier::read(const proto::RequestPtr& req, sim::SimTime demand,
                  DoneFn done) {
  ++stats_.reads_issued;
  auto op = std::make_shared<QuorumOp>();
  op->is_write = false;
  op->req = req;
  op->demand = demand;
  op->shard = shard_of(req->key);
  op->needed = config_.r;
  op->started = sim_.now();
  op->done = std::move(done);

  const auto& members = shard_members(op->shard);
  int live = 0;
  for (int m : members)
    if (alive(m)) ++live;
  if (live < op->needed) {
    ++stats_.quorum_failed_reads;
    if (op->done) op->done(false);
    return;
  }
  ++ops_in_flight_;
  for (int m : members)
    if (alive(m)) dispatch(op, m);
}

void KvTier::write(const proto::RequestPtr& req, sim::SimTime demand,
                   DoneFn done) {
  ++stats_.writes_issued;
  const int shard = shard_of(req->key);

  // Migration handover: the final window of a shard move refuses writes so
  // the membership swap is clean — the millibottleneck a rebalance induces
  // is partly CPU (chunks), partly this write shedding.
  const auto& mig = migrations_[static_cast<std::size_t>(shard)];
  if (mig.active && sim_.now() >= mig.end - config_.migration_handover) {
    ++stats_.migration_shed;
    if (done) done(false);
    return;
  }

  auto op = std::make_shared<QuorumOp>();
  op->is_write = true;
  op->req = req;
  op->demand = demand;
  op->shard = shard;
  op->needed = config_.w;
  op->started = sim_.now();
  op->done = std::move(done);

  const auto& members = shard_members(shard);
  int live = 0;
  for (int m : members)
    if (alive(m)) ++live;
  if (live < op->needed) {
    ++stats_.quorum_failed_writes;
    if (op->done) op->done(false);
    return;
  }

  op->version = ++clock_;
  ++ops_in_flight_;
  for (int m : members) {
    if (alive(m)) {
      dispatch(op, m);
    } else {
      ++stats_.write_replicas_missed;
      stash_hint(m, req, demand, op->version);
    }
  }
}

void KvTier::dispatch(const OpPtr& op, int rep) {
  if (!alive(rep)) {
    // The failure detector fences dead replicas before dispatch; reaching
    // here means the fence leaked — counted so chaos invariants catch it.
    ++stats_.crashed_dispatches;
    return;
  }
  ++op->sent;
  link_.deliver(sim_, [this, op, rep] {
    KvReplica& r = replica(rep);
    if (op->is_write) {
      r.execute(op->demand, [this, op, rep] {
        replica(rep).apply_write(op->req->key, op->version);
        link_.deliver(sim_, [this, op, rep] { on_reply(op, rep, 0); });
      });
    } else {
      r.execute(op->demand, [this, op, rep] {
        const std::uint64_t v = replica(rep).version_of(op->req->key);
        link_.deliver(sim_, [this, op, rep, v] { on_reply(op, rep, v); });
      });
    }
  });
}

void KvTier::on_reply(const OpPtr& op, int rep, std::uint64_t version) {
  ++op->replies;
  if (!op->is_write && !op->completed)
    op->read_versions.emplace_back(rep, version);
  if (!op->completed && op->replies >= op->needed) {
    op->completed = true;
    complete_op(op);
  }
  // Laggard replies past the quorum just arrive; the shared op keeps the
  // state alive until the last one lands.
}

void KvTier::complete_op(const OpPtr& op) {
  const sim::SimTime wait = sim_.now() - op->started;
  const double wait_ms = wait.to_millis();
  const int down = down_members_[static_cast<std::size_t>(op->shard)];

  op->req->kv_quorum_wait = op->req->kv_quorum_wait + wait;
  stats_.quorum_wait_ms_sum += wait_ms;
  if (down > 0) {
    op->req->kv_degraded_wait = op->req->kv_degraded_wait + wait;
    ++stats_.degraded_ops;
    stats_.degraded_wait_ms += wait_ms;
  }

  if (op->is_write) {
    ++stats_.quorum_writes;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvQuorumWrite,
                      obs::Tier::kKv, op->shard, -1, op->req->id, wait_ms,
                      down);
  } else {
    ++stats_.quorum_reads;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvQuorumRead,
                      obs::Tier::kKv, op->shard, -1, op->req->id, wait_ms,
                      down);
    issue_read_repairs(op);
  }

  --ops_in_flight_;
  if (op->done) op->done(true);
}

void KvTier::issue_read_repairs(const OpPtr& op) {
  // Among the first R repliers, bring stale replicas up to the newest
  // version seen (Dynamo-style read repair).
  std::uint64_t newest = 0;
  for (const auto& [rep, v] : op->read_versions) newest = std::max(newest, v);
  if (newest == 0) return;
  for (const auto& [rep, v] : op->read_versions) {
    if (v >= newest || !alive(rep)) continue;
    ++stats_.read_repairs;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvReadRepair,
                      obs::Tier::kKv, op->shard, rep, op->req->id,
                      static_cast<double>(newest));
    const std::uint64_t key = op->req->key;
    const int target = rep;
    link_.deliver(sim_, [this, target, key, newest] {
      if (!alive(target)) return;
      replica(target).execute(config_.hint_store_demand,
                              [this, target, key, newest] {
                                replica(target).apply_write(key, newest);
                              });
    });
  }
}

void KvTier::stash_hint(int home, const proto::RequestPtr& req,
                        sim::SimTime demand, std::uint64_t version) {
  // Dynamo hinted handoff: the next alive ring successor *outside* the
  // preference list keeps the write until `home` recovers.
  const int holder =
      ring_.next_alive(static_cast<std::uint64_t>(shard_of(req->key)),
                       shard_members(shard_of(req->key)), alive_);
  if (holder < 0) {
    ++stats_.handoff_dropped;
    return;
  }
  Hint h;
  h.key = req->key;
  h.version = version;
  h.demand = demand;
  h.home = home;
  link_.deliver(sim_, [this, holder, h] {
    if (!alive(holder)) {
      ++stats_.handoff_dropped;
      return;
    }
    replica(holder).execute(config_.hint_store_demand, [this, holder, h] {
      if (alive(h.home)) {
        // The home recovered while this handoff was still in flight — its
        // recovery replay has already run, so forward the write straight to
        // it instead of stranding the hint on the holder.
        const int home = h.home;
        link_.deliver(sim_, [this, h, home, holder] {
          if (!alive(home)) {
            if (alive(holder) && replica(holder).store_hint(h))
              ++stats_.hints_created;
            else
              ++stats_.handoff_dropped;
            return;
          }
          replica(home).execute(h.demand, [this, h, home, holder] {
            replica(home).apply_write(h.key, h.version);
            ++stats_.hints_replayed;
            NTIER_TRACE_EVENT(trace_, sim_.now(),
                              obs::EventKind::kKvHandoffReplay, obs::Tier::kKv,
                              home, holder, 0, static_cast<double>(h.version));
          });
        });
        return;
      }
      if (replica(holder).store_hint(h))
        ++stats_.hints_created;
      else
        ++stats_.handoff_dropped;
    });
  });
}

void KvTier::on_replica_crashed(int r) {
  if (!alive_[static_cast<std::size_t>(r)]) return;
  alive_[static_cast<std::size_t>(r)] = false;
  replica(r).crash();
  for (int s = 0; s < config_.shards; ++s) {
    const auto& members = shard_members(s);
    if (std::find(members.begin(), members.end(), r) != members.end())
      mark_member_down(s);
  }
}

void KvTier::on_replica_recovered(int r) {
  if (alive_[static_cast<std::size_t>(r)]) return;
  alive_[static_cast<std::size_t>(r)] = true;
  replica(r).restart();
  for (int s = 0; s < config_.shards; ++s) {
    const auto& members = shard_members(s);
    if (std::find(members.begin(), members.end(), r) != members.end())
      mark_member_up(s);
  }
  // Pull hints destined for the recovered replica from every alive holder…
  for (int holder = 0; holder < num_replicas(); ++holder) {
    if (holder == r || !alive(holder)) continue;
    replay_hints(holder, r);
  }
  // …and push hints the recovered replica itself held for alive homes.
  for (int home = 0; home < num_replicas(); ++home) {
    if (home == r || !alive(home)) continue;
    replay_hints(r, home);
  }
}

void KvTier::replay_hints(int holder, int home) {
  auto hints = std::make_shared<std::vector<Hint>>(
      replica(holder).take_hints_for(home));
  if (!hints->empty()) replay_one(holder, std::move(hints), 0);
}

void KvTier::replay_one(int holder, std::shared_ptr<std::vector<Hint>> hints,
                        std::size_t i) {
  if (i >= hints->size()) return;
  const Hint h = (*hints)[i];
  if (!alive(holder)) {
    // Holder died mid-replay: the remaining hints are lost with it.
    stats_.handoff_dropped += hints->size() - i;
    return;
  }
  replica(holder).execute(config_.hint_store_demand, [this, holder, h, hints,
                                                      i] {
    link_.deliver(sim_, [this, holder, h, hints, i] {
      if (!alive(h.home)) {
        // Home crashed again before this hint landed: re-stash it on the
        // holder so a later recovery replays it (or count the drop when the
        // holder's queue is full or the holder itself died).
        if (!alive(holder) || !replica(holder).store_hint(h))
          ++stats_.handoff_dropped;
      } else {
        const int home = h.home;
        replica(home).execute(h.demand, [this, h, home, holder] {
          replica(home).apply_write(h.key, h.version);
          ++stats_.hints_replayed;
          NTIER_TRACE_EVENT(trace_, sim_.now(),
                            obs::EventKind::kKvHandoffReplay, obs::Tier::kKv,
                            home, holder, 0, static_cast<double>(h.version));
        });
      }
      sim_.after(config_.hint_replay_gap, [this, holder, hints, i] {
        replay_one(holder, hints, i + 1);
      });
    });
  });
}

void KvTier::begin_migration(int shard, sim::SimTime duration,
                             double intensity) {
  auto& mig = migrations_[static_cast<std::size_t>(shard)];
  if (mig.active) return;
  const auto& members = shard_members(shard);
  int src = -1;
  for (int m : members)
    if (alive(m)) { src = m; break; }
  const int dest =
      ring_.next_alive(static_cast<std::uint64_t>(shard), members, alive_);
  if (src < 0 || dest < 0) {
    ++stats_.migrations_aborted;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                      obs::Tier::kKv, shard, dest, 0, 0.0, -2);
    return;
  }
  mig.active = true;
  mig.src = src;
  mig.dest = dest;
  mig.end = sim_.now() + duration;
  ++stats_.migrations_started;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                    obs::Tier::kKv, shard, dest, 0, intensity, +1);

  mig.chunk_demand = sim::SimTime::from_seconds(
      config_.migration_chunk_demand.to_seconds() * intensity);
  migration_chunk(shard);
  sim_.at(mig.end, [this, shard] { complete_migration(shard); });
}

void KvTier::migration_chunk(int shard) {
  auto& mig = migrations_[static_cast<std::size_t>(shard)];
  if (!mig.active || sim_.now() >= mig.end) return;
  if (!alive(mig.src) || !alive(mig.dest)) {
    // A crash on either end aborts the move; the old membership stands.
    mig.active = false;
    ++stats_.migrations_aborted;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                      obs::Tier::kKv, shard, mig.dest, 0, 0.0, -2);
    return;
  }
  ++stats_.migration_chunks;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                    obs::Tier::kKv, shard, mig.dest, 0,
                    static_cast<double>(config_.migration_bytes_per_chunk), 0);
  replica(mig.src).execute(mig.chunk_demand, [] {});
  const int dest = mig.dest;
  replica(dest).execute(mig.chunk_demand, [this, dest] {
    if (alive(dest)) replica(dest).dirty_bytes(config_.migration_bytes_per_chunk);
  });
  sim_.after(config_.migration_chunk_interval,
             [this, shard] { migration_chunk(shard); });
}

void KvTier::complete_migration(int shard) {
  auto& mig = migrations_[static_cast<std::size_t>(shard)];
  if (!mig.active) return;
  mig.active = false;
  if (!alive(mig.dest)) {
    ++stats_.migrations_aborted;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                      obs::Tier::kKv, shard, mig.dest, 0, 0.0, -2);
    return;
  }
  auto& members = members_[static_cast<std::size_t>(shard)];
  const auto it = std::find(members.begin(), members.end(), mig.src);
  if (it != members.end()) *it = mig.dest;
  recount_shard(shard);
  ++stats_.migrations_completed;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kKvMigration,
                    obs::Tier::kKv, shard, mig.dest, 0, 0.0, -1);
}

void KvTier::mark_member_down(int shard) {
  auto& down = down_members_[static_cast<std::size_t>(shard)];
  if (down++ == 0) degraded_since_[static_cast<std::size_t>(shard)] = sim_.now();
}

void KvTier::mark_member_up(int shard) {
  auto& down = down_members_[static_cast<std::size_t>(shard)];
  if (down > 0 && --down == 0) {
    degraded_ms_[static_cast<std::size_t>(shard)] +=
        (sim_.now() - degraded_since_[static_cast<std::size_t>(shard)])
            .to_millis();
  }
}

void KvTier::recount_shard(int shard) {
  // Membership changed (migration swap): recompute the down-count and keep
  // the degraded interval consistent with it.
  const auto& members = shard_members(shard);
  int down = 0;
  for (int m : members)
    if (!alive(m)) ++down;
  auto& cur = down_members_[static_cast<std::size_t>(shard)];
  if (cur > 0 && down == 0) {
    degraded_ms_[static_cast<std::size_t>(shard)] +=
        (sim_.now() - degraded_since_[static_cast<std::size_t>(shard)])
            .to_millis();
  } else if (cur == 0 && down > 0) {
    degraded_since_[static_cast<std::size_t>(shard)] = sim_.now();
  }
  cur = down;
}

void KvTier::finish(sim::SimTime now) {
  for (int s = 0; s < config_.shards; ++s) {
    if (down_members_[static_cast<std::size_t>(s)] > 0) {
      degraded_ms_[static_cast<std::size_t>(s)] +=
          (now - degraded_since_[static_cast<std::size_t>(s)]).to_millis();
      degraded_since_[static_cast<std::size_t>(s)] = now;
    }
  }
  for (auto* r : replicas_) r->finish_traces();
}

}  // namespace ntier::kv
