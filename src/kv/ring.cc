#include "kv/ring.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace ntier::kv {

namespace {
constexpr std::uint64_t kShardSalt = 0x8FB3C5D1A7E92461ull;
constexpr std::uint64_t kVnodeSalt = 0x2545F4914F6CDD1Dull;
}  // namespace

HashRing::HashRing(int replicas, int vnodes) : replicas_(replicas) {
  if (replicas < 1 || vnodes < 1)
    throw std::invalid_argument("HashRing: replicas and vnodes must be >= 1");
  points_.reserve(static_cast<std::size_t>(replicas) * vnodes);
  for (int rep = 0; rep < replicas; ++rep)
    for (int v = 0; v < vnodes; ++v)
      points_.emplace_back(
          sim::Rng::mix64(kVnodeSalt + 0x10001ull * static_cast<std::uint64_t>(rep) +
                          static_cast<std::uint64_t>(v)),
          rep);
  // Position ties (astronomically unlikely) break by replica id so the ring
  // order is a total, deterministic function of its inputs.
  std::sort(points_.begin(), points_.end());
}

std::uint64_t HashRing::shard_point(std::uint64_t shard) {
  return sim::Rng::mix64(kShardSalt ^ shard);
}

template <typename Fn>
void HashRing::walk(std::uint64_t shard, Fn&& fn) const {
  const std::uint64_t point = shard_point(shard);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), std::make_pair(point, -1));
  const std::size_t start =
      static_cast<std::size_t>(it - points_.begin()) % points_.size();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!fn(points_[(start + i) % points_.size()].second)) return;
  }
}

std::vector<int> HashRing::preference_list(std::uint64_t shard, int n) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  walk(shard, [&out, n](int rep) {
    if (std::find(out.begin(), out.end(), rep) == out.end()) out.push_back(rep);
    return static_cast<int>(out.size()) < n;
  });
  return out;
}

int HashRing::next_alive(std::uint64_t shard, const std::vector<int>& exclude,
                         const std::vector<bool>& alive) const {
  int found = -1;
  walk(shard, [&](int rep) {
    if (std::find(exclude.begin(), exclude.end(), rep) != exclude.end())
      return true;
    if (!alive[static_cast<std::size_t>(rep)]) return true;
    found = rep;
    return false;
  });
  return found;
}

}  // namespace ntier::kv
