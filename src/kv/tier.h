#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kv/config.h"
#include "kv/replica.h"
#include "kv/ring.h"
#include "net/link.h"
#include "obs/trace.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::kv {

/// Counters of everything the KV tier did — the raw material for the chaos
/// hinted-handoff accounting invariant: every write issued is eventually
/// applied (quorum met), shed by a migration handover, or failed for lack
/// of a quorum; every missed per-replica write resolves to a replayed hint
/// or a counted drop. Nothing is silently lost.
struct KvStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t quorum_reads = 0;    // reads that met the R quorum
  std::uint64_t quorum_writes = 0;   // writes that met the W quorum
  std::uint64_t quorum_failed_reads = 0;
  std::uint64_t quorum_failed_writes = 0;
  std::uint64_t read_repairs = 0;
  /// Down preference-list members seen by dispatched writes (each becomes a
  /// hint or a handoff_dropped).
  std::uint64_t write_replicas_missed = 0;
  std::uint64_t hints_created = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t handoff_dropped = 0;  // no stand-in alive, or holder full
  std::uint64_t migration_shed = 0;   // writes refused in a handover window
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t migration_chunks = 0;
  /// Operations the tier dispatched to a replica its failure detector knew
  /// was dead — the KV analogue of crashed_accepts; must stay zero.
  std::uint64_t crashed_dispatches = 0;
  std::uint64_t degraded_ops = 0;  // quorum ops completed with a member down
  double quorum_wait_ms_sum = 0;   // over quorum_reads + quorum_writes
  double degraded_wait_ms = 0;

  /// Missed writes not yet resolved to a replay or a drop (0 after every
  /// crashed replica recovered and the drain settled).
  std::uint64_t hints_pending() const {
    return write_replicas_missed - hints_replayed - handoff_dropped;
  }
  double mean_quorum_wait_ms() const {
    const std::uint64_t ops = quorum_reads + quorum_writes;
    return ops ? quorum_wait_ms_sum / static_cast<double>(ops) : 0.0;
  }
};

/// The quorum coordinator of the replicated sharded KV tier. Owns the
/// consistent-hash ring and the per-shard membership table; executes
/// strict-quorum reads/writes against the alive preference-list members,
/// stashes hinted handoffs for the dead ones, read-repairs divergent
/// replicas, replays hints on recovery, and runs seeded shard migrations
/// whose copy work is itself a millibottleneck source. One KvTier is shared
/// by every DbRouter (it IS the data tier), exactly as the MySQL replica
/// vector is shared in mysql mode.
class KvTier {
 public:
  /// Completion of one client-visible operation; ok=false means the quorum
  /// could not be met (or the write was shed by a migration handover) — the
  /// router surfaces it like a SQL error.
  using DoneFn = std::function<void(bool ok)>;

  KvTier(sim::Simulation& simu, std::vector<KvReplica*> replicas,
         KvConfig config, sim::SimTime link_latency);

  KvTier(const KvTier&) = delete;
  KvTier& operator=(const KvTier&) = delete;

  void read(const proto::RequestPtr& req, sim::SimTime demand, DoneFn done);
  void write(const proto::RequestPtr& req, sim::SimTime demand, DoneFn done);

  /// Failure-detector hooks (the chaos controller calls these around
  /// KvReplica::crash/restart). Recovery triggers hint replay both *to* the
  /// recovered replica and *from* it (hints it held for alive homes).
  void on_replica_crashed(int r);
  void on_replica_recovered(int r);

  /// Seeded shard rebalancing: move `shard` off its first alive member to
  /// the next ring successor outside the preference list. Chunked CPU work
  /// on source and destination for `duration`; writes inside the final
  /// handover window are shed. `intensity` scales the chunk demand.
  void begin_migration(int shard, sim::SimTime duration, double intensity);
  /// Swap the membership table at the end of a migration (idempotent; also
  /// self-scheduled at the migration's end).
  void complete_migration(int shard);

  void set_trace(obs::TraceCollector* t) { trace_ = t; }
  /// Close degraded-time intervals at end of run.
  void finish(sim::SimTime now);

  // -- topology ---------------------------------------------------------------
  const KvConfig& config() const { return config_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  KvReplica& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  int num_shards() const { return config_.shards; }
  int shard_of(std::uint64_t key) const;
  const std::vector<int>& shard_members(int shard) const {
    return members_[static_cast<std::size_t>(shard)];
  }
  bool alive(int r) const { return alive_[static_cast<std::size_t>(r)]; }

  // -- accounting -------------------------------------------------------------
  const KvStats& stats() const { return stats_; }
  /// Client-visible quorum ops still outstanding (0 after drain).
  std::uint64_t ops_in_flight() const { return ops_in_flight_; }
  /// Hints physically held across all replicas right now.
  std::uint64_t hints_held() const;
  /// Time each shard spent with >= 1 preference-list member down.
  double shard_degraded_ms(int shard) const {
    return degraded_ms_[static_cast<std::size_t>(shard)];
  }
  double total_degraded_ms() const;

 private:
  struct QuorumOp {
    bool is_write = false;
    proto::RequestPtr req;
    sim::SimTime demand;
    int shard = -1;
    int needed = 0;
    int sent = 0;
    int replies = 0;
    bool completed = false;
    std::uint64_t version = 0;  // write: new version; read: unused
    std::vector<std::pair<int, std::uint64_t>> read_versions;
    sim::SimTime started;
    DoneFn done;
  };
  using OpPtr = std::shared_ptr<QuorumOp>;

  struct Migration {
    bool active = false;
    int src = -1;
    int dest = -1;
    sim::SimTime end;
    sim::SimTime chunk_demand;  // migration_chunk_demand scaled by intensity
  };

  void dispatch(const OpPtr& op, int rep);
  void on_reply(const OpPtr& op, int rep, std::uint64_t version);
  void complete_op(const OpPtr& op);
  void issue_read_repairs(const OpPtr& op);
  void stash_hint(int home, const proto::RequestPtr& req, sim::SimTime demand,
                  std::uint64_t version);
  void replay_hints(int holder, int home);
  void replay_one(int holder, std::shared_ptr<std::vector<Hint>> hints,
                  std::size_t i);
  void migration_chunk(int shard);
  void mark_member_down(int shard);
  void mark_member_up(int shard);
  void recount_shard(int shard);

  sim::Simulation& sim_;
  std::vector<KvReplica*> replicas_;
  KvConfig config_;
  net::Link link_;
  HashRing ring_;
  obs::TraceCollector* trace_ = nullptr;

  std::vector<std::vector<int>> members_;  // shard -> preference list
  std::vector<bool> alive_;
  std::uint64_t clock_ = 0;  // global logical version counter (deterministic)
  KvStats stats_;
  std::uint64_t ops_in_flight_ = 0;

  std::vector<Migration> migrations_;       // by shard
  std::vector<int> down_members_;           // by shard
  std::vector<sim::SimTime> degraded_since_;  // by shard (valid when down > 0)
  std::vector<double> degraded_ms_;         // by shard, closed intervals
};

}  // namespace ntier::kv
