#include "workload/rubbos.h"

#include <algorithm>
#include <cmath>

namespace ntier::workload {

std::string to_string(Mix m) {
  return m == Mix::kBrowseOnly ? "browse_only" : "read_write";
}

std::string to_string(PriorityMix p) {
  return p == PriorityMix::kUniform ? "uniform" : "rubbos";
}

namespace {

/// The 24 RUBBoS interactions. Weights follow the benchmark's transition
/// tables in spirit: browsing interactions dominate; the read/write mix adds
/// ~10 % write-path traffic. Demands are calibrated, not measured —
/// see DESIGN.md §2 (the *shape* of the load is what matters).
std::vector<InteractionType> build_table() {
  //                     name                    wB     wRW   apMs  tcMs  q  missMs  reqB  respB  logB
  return {
      {"StoriesOfTheDay",      20.0, 18.0, 0.45, 0.55, 1, 0.50,  420, 12000, 1300},
      {"Home",                 10.0,  9.0, 0.40, 0.35, 0, 0.00,  380,  6000,  900},
      {"BrowseCategories",      8.0,  7.0, 0.45, 0.50, 1, 0.40,  420,  7000, 1100},
      {"BrowseStoriesByCategory", 9.0, 8.0, 0.50, 0.65, 2, 0.50, 460, 14000, 1400},
      {"OlderStories",          6.0,  5.5, 0.50, 0.60, 2, 0.55,  450, 13000, 1300},
      {"ViewStory",            16.0, 14.0, 0.45, 0.60, 2, 0.45,  430, 16000, 1500},
      {"ViewComment",          10.0,  9.0, 0.45, 0.55, 2, 0.45,  440, 11000, 1300},
      {"Search",                4.0,  3.5, 0.50, 0.90, 3, 0.80,  470, 10000, 1200},
      {"SearchStories",         2.5,  2.2, 0.50, 0.85, 3, 0.80,  470, 10000, 1200},
      {"SearchComments",        1.5,  1.3, 0.50, 0.95, 3, 0.90,  470,  9000, 1100},
      {"SearchUsers",           1.0,  0.9, 0.45, 0.70, 2, 0.60,  450,  6000,  900},
      {"ViewUserInfo",          3.0,  2.6, 0.40, 0.45, 1, 0.40,  420,  5000,  900},
      {"AuthorLogin",           1.5,  1.4, 0.40, 0.40, 1, 0.35,  520,  3000,  800},
      {"AuthorTasks",           0.5,  0.6, 0.45, 0.55, 2, 0.50,  430,  7000, 1000},
      {"ReviewStories",         0.5,  0.6, 0.50, 0.70, 2, 0.60,  440,  9000, 1100},
      {"AcceptStory",           0.0,  0.4, 0.45, 0.60, 2, 0.55,  480,  4000, 1200},
      {"RejectStory",           0.0,  0.2, 0.45, 0.55, 2, 0.50,  480,  3500, 1100},
      {"SubmitStory",           0.0,  1.2, 0.50, 0.70, 1, 0.60,  900,  5000, 1600},
      {"StoreStory",            0.0,  1.0, 0.45, 0.80, 3, 0.90, 2500,  3000, 2400},
      {"PostComment",           0.0,  2.5, 0.50, 0.65, 1, 0.55,  800,  5000, 1500},
      {"StoreComment",          0.0,  2.2, 0.45, 0.75, 3, 0.85, 1800,  3000, 2200},
      {"ModerateComment",       0.0,  0.8, 0.45, 0.55, 2, 0.50,  460,  4500, 1100},
      {"RegisterUser",          0.2,  0.4, 0.45, 0.55, 1, 0.50,  700,  3500, 1300},
      {"StoreRegisterUser",     0.2,  0.4, 0.45, 0.70, 2, 0.80, 1100,  3000, 1800},
  };
}

/// Successor sets encoding RUBBoS's session structure (which pages link to
/// which). Indices follow build_table() order.
std::vector<std::vector<std::size_t>> build_successors() {
  return {
      /*StoriesOfTheDay*/ {5, 2, 4},
      /*Home*/ {0, 2, 7},
      /*BrowseCategories*/ {3},
      /*BrowseStoriesByCategory*/ {5, 4},
      /*OlderStories*/ {5, 4},
      /*ViewStory*/ {6, 5, 19, 11},
      /*ViewComment*/ {6, 19, 21},
      /*Search*/ {8, 9, 10},
      /*SearchStories*/ {5},
      /*SearchComments*/ {6},
      /*SearchUsers*/ {11},
      /*ViewUserInfo*/ {0},
      /*AuthorLogin*/ {13, 17},
      /*AuthorTasks*/ {14},
      /*ReviewStories*/ {15, 16},
      /*AcceptStory*/ {14},
      /*RejectStory*/ {14},
      /*SubmitStory*/ {18},
      /*StoreStory*/ {0},
      /*PostComment*/ {20},
      /*StoreComment*/ {6},
      /*ModerateComment*/ {0},
      /*RegisterUser*/ {23},
      /*StoreRegisterUser*/ {0},
  };
}

}  // namespace

namespace {

/// Per-interaction brownout classes (indices follow build_table() order):
/// the whole author/write path is high (0) — a shed there loses user work;
/// searches and the archive page are low (2) — trivially retriable; the
/// remaining browse/view pages are normal (1).
void assign_priorities(std::vector<InteractionType>& table) {
  for (std::size_t i = 12; i <= 23; ++i) table[i].priority = 0;  // author/write
  table[4].priority = 2;                                         // OlderStories
  for (std::size_t i = 7; i <= 10; ++i) table[i].priority = 2;   // searches
}

/// Which interactions commit data, and with how many of their round trips
/// (indices follow build_table() order). The store/moderate pages end in a
/// commit; the multi-query stores also update an index row.
void assign_db_writes(std::vector<InteractionType>& table) {
  table[15].db_writes = 1;  // AcceptStory
  table[16].db_writes = 1;  // RejectStory
  table[18].db_writes = 2;  // StoreStory
  table[20].db_writes = 2;  // StoreComment
  table[21].db_writes = 1;  // ModerateComment
  table[23].db_writes = 1;  // StoreRegisterUser
}

}  // namespace

RubbosWorkload::RubbosWorkload(WorkloadParams params)
    : params_(params), table_(build_table()), successors_(build_successors()) {
  if (params_.priority_mix == PriorityMix::kRubbos) assign_priorities(table_);
  assign_db_writes(table_);
  weights_browse_.reserve(table_.size());
  weights_rw_.reserve(table_.size());
  for (const auto& t : table_) {
    weights_browse_.push_back(t.weight_browse);
    weights_rw_.push_back(t.weight_rw);
  }
  if (params_.key_space > 0) {
    // CDF over ranks: weight(rank) = (rank+1)^-s. Precomputed once so a key
    // draw is a binary search instead of Rng::zipf's linear scan.
    zipf_cdf_.reserve(params_.key_space);
    double total = 0;
    for (std::uint64_t r = 0; r < params_.key_space; ++r) {
      total += std::pow(static_cast<double>(r + 1), -params_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

std::size_t RubbosWorkload::next_interaction(sim::Rng& rng, int prev) const {
  const auto& weights = active_weights();
  if (params_.markov_sessions && prev >= 0 &&
      static_cast<std::size_t>(prev) < successors_.size() &&
      rng.bernoulli(params_.p_follow)) {
    // Follow a session link, weighted by the mix so zero-weight successors
    // (e.g. writes in the browse-only mix) are never drawn.
    const auto& succ = successors_[static_cast<std::size_t>(prev)];
    std::vector<double> w;
    w.reserve(succ.size());
    double total = 0;
    for (std::size_t s : succ) {
      w.push_back(weights[s]);
      total += weights[s];
    }
    if (total > 0) return succ[rng.weighted_index(w)];
  }
  return rng.weighted_index(weights);
}

proto::RequestPtr RubbosWorkload::make_request(sim::Rng& rng, std::uint64_t id,
                                               std::uint32_t client,
                                               int prev_interaction) const {
  return materialize(rng, id, client, next_interaction(rng, prev_interaction));
}

proto::RequestPtr RubbosWorkload::materialize(sim::Rng& rng, std::uint64_t id,
                                              std::uint32_t client,
                                              std::size_t k) const {
  const InteractionType& it = table_.at(k);
  auto req = std::make_shared<proto::Request>();
  req->id = id;
  req->client = client;
  req->interaction = static_cast<std::uint16_t>(k);
  const double s = params_.demand_scale;
  req->apache_demand = sim::SimTime::from_millis(
      rng.lognormal_mean(it.apache_demand_ms * s, params_.demand_cv));
  req->tomcat_demand = sim::SimTime::from_millis(
      rng.lognormal_mean(it.tomcat_demand_ms * s, params_.demand_cv));
  req->db_queries = static_cast<std::uint8_t>(it.db_queries);
  if (it.db_queries > 0) {
    const double per_query_ms =
        rng.bernoulli(params_.query_cache_hit)
            ? params_.mysql_hit_demand_ms * s
            : rng.lognormal_mean(it.mysql_miss_demand_ms * s, params_.demand_cv);
    req->mysql_demand = sim::SimTime::from_millis(per_query_ms);
  }
  req->request_bytes = it.request_bytes;
  req->response_bytes = it.response_bytes;
  req->log_bytes = it.log_bytes;
  req->priority = it.priority;
  req->db_writes = std::min(it.db_writes, req->db_queries);
  if (params_.key_space > 0) {
    // Appended after every pre-existing draw so the stream (and therefore
    // every MySQL-mode run) is byte-identical when key_space == 0.
    const auto pos = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(),
                                      rng.uniform01());
    req->key = static_cast<std::uint64_t>(pos - zipf_cdf_.begin());
    if (req->key >= params_.key_space) req->key = params_.key_space - 1;
  }
  return req;
}

double RubbosWorkload::mean_tomcat_demand_ms() const {
  const auto& w = active_weights();
  double total = 0, wsum = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    total += w[i] * table_[i].tomcat_demand_ms;
    wsum += w[i];
  }
  return params_.demand_scale * total / wsum;
}

double RubbosWorkload::mean_apache_demand_ms() const {
  const auto& w = active_weights();
  double total = 0, wsum = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    total += w[i] * table_[i].apache_demand_ms;
    wsum += w[i];
  }
  return params_.demand_scale * total / wsum;
}

double RubbosWorkload::mean_log_bytes() const {
  const auto& w = active_weights();
  double total = 0, wsum = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    total += w[i] * table_[i].log_bytes;
    wsum += w[i];
  }
  return total / wsum;
}

}  // namespace ntier::workload
