#include "workload/client.h"

#include <algorithm>
#include <stdexcept>

namespace ntier::workload {

ClientPopulation::ClientPopulation(sim::Simulation& simu, ClientParams params,
                                   const RubbosWorkload& workload,
                                   std::vector<proto::FrontEnd*> frontends,
                                   metrics::RequestLog& log)
    : sim_(simu),
      params_(params),
      workload_(workload),
      frontends_(std::move(frontends)),
      log_(log),
      link_(params.link_latency),
      rng_(simu.rng().fork()) {
  if (frontends_.empty())
    throw std::invalid_argument("ClientPopulation: no front-ends");
  if (params_.num_clients <= 0)
    throw std::invalid_argument("ClientPopulation: no clients");
  if (params_.sticky_sessions)
    routes_.assign(
        static_cast<std::size_t>(std::min(params_.num_clients, 65536)), -1);
  if (workload_.params().markov_sessions)
    prev_.assign(
        static_cast<std::size_t>(std::min(params_.num_clients, 65536)), -1);
}

void ClientPopulation::toggle_burst() {
  in_burst_ = !in_burst_;
  const sim::SimTime mean =
      in_burst_ ? params_.burst_on_mean : params_.burst_off_mean;
  sim_.after(rng_.exponential_time(mean), [this] { toggle_burst(); });
}

void ClientPopulation::start() {
  if (params_.bursty)
    sim_.after(rng_.exponential_time(params_.burst_off_mean),
               [this] { toggle_burst(); });
  for (int c = 0; c < params_.num_clients; ++c) {
    // The id wraps at 64 k; it only labels records and spreads clients over
    // the front-ends, both of which survive the wrap unchanged.
    const auto client = static_cast<std::uint16_t>(c % 65536);
    const sim::SimTime offset = sim::SimTime::from_seconds(
        rng_.uniform(0.0, params_.ramp.to_seconds()));
    sim_.after(offset, [this, client] { issue(client); });
  }
}

void ClientPopulation::issue(std::uint16_t client) {
  if (quiesced_) return;
  const int prev =
      prev_.empty() ? -1 : static_cast<int>(prev_[client % prev_.size()]);
  auto req = workload_.make_request(rng_, next_request_id_++, client, prev);
  if (!prev_.empty())
    prev_[client % prev_.size()] = static_cast<std::int16_t>(req->interaction);
  req->client_start = sim_.now();
  if (params_.deadline_budget != sim::SimTime::zero())
    req->deadline = req->client_start + params_.deadline_budget;
  req->apache_id = static_cast<std::int16_t>(client % frontends_.size());
  if (!routes_.empty())
    req->session_route = routes_[client % routes_.size()];
  ++issued_;
  if (issue_hook_) issue_hook_(sim_.now(), *req);
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kClientSend,
                    obs::Tier::kClient, req->apache_id, client, req->id, 0.0,
                    req->interaction);
  attempt(client, req, 0);
}

void ClientPopulation::attempt(std::uint16_t client,
                               const proto::RequestPtr& req,
                               std::size_t tries) {
  // An injected link fault can lose the SYN on the wire; like a silent
  // backlog drop, that is only discovered by the retransmission timer. Loss
  // is deliberately not applied to responses — the client has no response
  // timeout, so a lost response would leak the request as forever-in-flight.
  if (link_.drops(rng_)) {
    connect_dropped(client, req, tries);
    return;
  }
  // SYN travels one link latency; acceptance or silent drop happens at the
  // server side. A drop is only discovered by the retransmission timer.
  link_.deliver(sim_, [this, client, req, tries] {
    auto* fe = frontends_[static_cast<std::size_t>(req->apache_id)];
    const bool accepted = fe->try_submit(
        req, [this, client](const proto::RequestPtr& r, bool ok) {
          // Response travels back to the client.
          link_.deliver(sim_, [this, client, r, ok] {
            // An admission/brownout 503 is explicitly retriable: back off
            // and re-attempt (fresh connection) while the budget and the
            // retry cap allow — unlike a silent SYN drop, the client knows
            // immediately and never waits out a retransmission timer.
            if (!ok && !quiesced_ &&
                (r->shed == proto::ShedReason::kAdmission ||
                 r->shed == proto::ShedReason::kBrownout) &&
                static_cast<int>(r->shed_retries) < params_.shed_retry_limit &&
                (r->deadline == sim::SimTime::zero() ||
                 sim_.now() < r->deadline)) {
              ++shed_retries_;
              r->shed_retries = static_cast<std::uint8_t>(r->shed_retries + 1);
              r->shed = proto::ShedReason::kNone;
              // Reset the per-hop stamps so a later success decomposes as
              // the attempt that actually served it.
              r->accepted_at = r->assigned_at = r->backend_done_at =
                  sim::SimTime::zero();
              r->tomcat_id = -1;
              const sim::SimTime backoff =
                  params_.shed_retry_backoff *
                  static_cast<std::int64_t>(r->shed_retries);
              sim_.after(backoff,
                         [this, client, r] { attempt(client, r, 0); });
              return;
            }
            finish(client, r,
                   ok ? metrics::RequestOutcome::kOk
                      : metrics::RequestOutcome::kBalancerError);
          });
        });
    if (!accepted) connect_dropped(client, req, tries);
  });
}

void ClientPopulation::connect_dropped(std::uint16_t client,
                                       const proto::RequestPtr& req,
                                       std::size_t tries) {
  ++connection_drops_;
  if (tries < params_.retransmit.max_retries()) {
    req->retransmissions = static_cast<std::uint8_t>(req->retransmissions + 1);
    NTIER_TRACE_EVENT(trace_events_, sim_.now(),
                      obs::EventKind::kSynRetransmit, obs::Tier::kClient,
                      req->apache_id, client, req->id,
                      params_.retransmit.delay(tries).to_millis(),
                      req->retransmissions);
    sim_.after(params_.retransmit.delay(tries),
               [this, client, req, tries] { attempt(client, req, tries + 1); });
  } else {
    finish(client, req, metrics::RequestOutcome::kDropped);
  }
}

void ClientPopulation::finish(std::uint16_t client, const proto::RequestPtr& req,
                              metrics::RequestOutcome outcome) {
  switch (outcome) {
    case metrics::RequestOutcome::kOk: ++completed_ok_; break;
    case metrics::RequestOutcome::kDropped: ++dropped_; break;
    case metrics::RequestOutcome::kBalancerError: ++failed_; break;
    case metrics::RequestOutcome::kInFlight: break;
  }
  if (!routes_.empty() && outcome == metrics::RequestOutcome::kOk &&
      req->tomcat_id >= 0)
    routes_[client % routes_.size()] = req->tomcat_id;
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kClientDone,
                    obs::Tier::kClient, req->apache_id, client, req->id,
                    (sim_.now() - req->client_start).to_millis(),
                    static_cast<std::int32_t>(outcome));
  if (req->client_start >= params_.warmup) {
    metrics::RequestRecord rec;
    rec.id = req->id;
    rec.interaction = req->interaction;
    rec.apache = req->apache_id;
    rec.tomcat = req->tomcat_id;
    rec.retransmissions = req->retransmissions;
    rec.outcome = outcome;
    rec.start = req->client_start;
    rec.end = sim_.now();
    rec.accepted_at = req->accepted_at;
    rec.assigned_at = req->assigned_at;
    rec.backend_done_at = req->backend_done_at;
    rec.deadline = req->deadline;
    rec.priority = req->priority;
    rec.shed = req->shed;
    rec.kv_wait_ms = req->kv_quorum_wait.to_millis();
    rec.kv_degraded_ms = req->kv_degraded_wait.to_millis();
    log_.on_complete(rec);
  }
  think_then_next(client);
}

void ClientPopulation::think_then_next(std::uint16_t client) {
  sim::SimTime think = rng_.exponential_time(params_.think_mean);
  if (in_burst_)
    think = sim::SimTime::from_seconds(think.to_seconds() /
                                       params_.burst_multiplier);
  sim_.after(think, [this, client] { issue(client); });
}

}  // namespace ntier::workload
