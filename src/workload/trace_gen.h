#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/rng.h"
#include "workload/trace.h"

namespace ntier::workload {

/// Shape of a synthetic "production day": a non-homogeneous Poisson session
/// arrival process with a diurnal rate curve and an optional flash crowd,
/// where each session is a think-time-separated run of RUBBoS interactions
/// (Markov-capable via the workload's session model) that may abandon early.
/// Parsed from the CLI as a key=value list (see trace_gen_spec_from_string).
struct TraceGenSpec {
  std::uint64_t seed = 42;
  /// Trace horizon in (simulated) seconds; sessions whose arrivals run past
  /// the horizon are cut there.
  double duration_s = 60.0;
  /// Mean offered request rate at the diurnal midpoint.
  double base_rps = 1000.0;
  /// Diurnal modulation: rate(t) = base_rps * (1 + A*sin(2*pi*t/period -
  /// pi/2)), i.e. the day starts at the trough (1-A) and peaks at (1+A)
  /// mid-period. Zero = flat.
  double diurnal_amplitude = 0.0;
  /// Diurnal period; 0 = one full cycle over duration_s (a compressed day).
  double diurnal_period_s = 0.0;
  /// Flash crowd: rate multiplied by flash_multiplier for flash_duration_s
  /// starting at flash_at_s. Negative flash_at_s = no flash crowd.
  double flash_at_s = -1.0;
  double flash_duration_s = 5.0;
  double flash_multiplier = 2.0;
  /// Mean interactions per session (geometric length >= 1).
  double session_mean = 5.0;
  /// Mean think time between a session's interactions, seconds.
  double think_mean_s = 1.0;
  /// Per-interaction probability the user walks away mid-session (on top of
  /// the geometric session end).
  double abandon_p = 0.0;

  bool validate(std::string* error = nullptr) const;
  /// Canonical key=value form; round-trips through
  /// trace_gen_spec_from_string.
  std::string to_string() const;
};

/// Parse "key=value,key=value" (keys named exactly as the struct fields
/// minus the unit suffixes: seed, duration, base-rps, diurnal-amplitude,
/// diurnal-period, flash-at, flash-duration, flash-multiplier, session-mean,
/// think-mean, abandon-p). Returns nullopt and sets `error` on bad input.
std::optional<TraceGenSpec> trace_gen_spec_from_string(const std::string& s,
                                                       std::string* error);

/// Seeded generator: the same spec + workload always emits a byte-identical
/// trace, so "one day of production traffic" is a single replayable,
/// diff-able artifact.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGenSpec spec) : spec_(std::move(spec)) {}

  const TraceGenSpec& spec() const { return spec_; }

  /// Instantaneous offered request rate at time t (seconds): diurnal curve
  /// times flash-crowd multiplier. Exposed for tests.
  double rate_at(double t_s) const;

  /// Emit the trace. Session starts are drawn by thinning a Poisson process
  /// at the spec's peak rate; each session forks its own RNG stream, walks
  /// the workload's interaction model and materialises key/priority draws,
  /// so the trace is *rich* (replays drive the KV tier and brownout exactly
  /// as generated).
  ArrivalTrace generate(const RubbosWorkload& workload) const;

 private:
  TraceGenSpec spec_;
};

}  // namespace ntier::workload
