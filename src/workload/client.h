#pragma once

#include <cstdint>
#include <vector>

#include "metrics/request_log.h"
#include "net/link.h"
#include "net/retransmit.h"
#include "obs/trace.h"
#include "proto/frontend.h"
#include "sim/simulation.h"
#include "workload/rubbos.h"

namespace ntier::workload {

/// Closed-loop client parameters. The paper drives 70 000 clients from
/// 8 client nodes with RUBBoS's think-time model; the scaled default keeps
/// the same offered load with fewer (faster-thinking) clients.
struct ClientParams {
  int num_clients = 70'000;
  sim::SimTime think_mean = sim::SimTime::seconds(7);
  /// Clients issue their first request uniformly inside this window so the
  /// system starts near steady state instead of with a thundering herd.
  sim::SimTime ramp = sim::SimTime::seconds(7);
  /// Completions before this instant are not recorded (warm-up).
  sim::SimTime warmup = sim::SimTime::zero();
  net::RetransmitSchedule retransmit;
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Sticky sessions: after the first successful interaction a client tags
  /// every later request with the Tomcat that served it (mod_jk jvmRoute).
  bool sticky_sessions = false;
  /// Bursty arrivals (one of the paper's cited millibottleneck causes): the
  /// whole population alternates between normal and burst phases; during a
  /// burst, think times are divided by `burst_multiplier`.
  bool bursty = false;
  sim::SimTime burst_on_mean = sim::SimTime::millis(400);
  sim::SimTime burst_off_mean = sim::SimTime::seconds(4);
  double burst_multiplier = 4.0;
  /// Overload control: response-time budget stamped as an absolute deadline
  /// on every request (zero = no deadlines, the seed behaviour).
  sim::SimTime deadline_budget;
  /// A 503 from the admission limiter is retriable: the client backs off
  /// and re-attempts up to this many times (while the deadline allows).
  int shed_retry_limit = 2;
  sim::SimTime shed_retry_backoff = sim::SimTime::millis(100);
};

/// The client tier: each client loops {think, pick interaction, connect —
/// retrying dropped attempts on the retransmission schedule — await
/// response}. Clients are statically partitioned across the front-ends
/// exactly as the paper wires client nodes to Apaches.
class ClientPopulation {
 public:
  ClientPopulation(sim::Simulation& simu, ClientParams params,
                   const RubbosWorkload& workload,
                   std::vector<proto::FrontEnd*> frontends,
                   metrics::RequestLog& log);

  ClientPopulation(const ClientPopulation&) = delete;
  ClientPopulation& operator=(const ClientPopulation&) = delete;

  /// Schedule every client's first request. Call once before running.
  void start();

  /// Stop issuing new requests (in-flight ones drain normally). The chaos
  /// harness calls this, then runs the simulation on so it can assert
  /// in_flight() == 0 — request conservation — once the drain settles.
  void quiesce() { quiesced_ = true; }
  bool quiesced() const { return quiesced_; }

  /// The client↔Apache link, exposed for fault injection. Injected loss is
  /// applied to connect attempts (a lost SYN is recovered by the
  /// retransmission schedule, like a silent backlog drop).
  net::Link& link() { return link_; }

  /// Observation hook fired at every issued request (arrival-trace
  /// recording); set before start(). Sees the fully-materialised request so
  /// recorders can capture the data key and priority class too.
  using IssueHook =
      std::function<void(sim::SimTime at, const proto::Request& req)>;
  void set_issue_hook(IssueHook hook) { issue_hook_ = std::move(hook); }

  /// Attach the cross-tier event collector (null disables). Emits
  /// client_send / syn_retransmit / client_done events with tier=kClient,
  /// node=targeted Apache, worker=client id.
  void set_trace(obs::TraceCollector* trace) { trace_events_ = trace; }

  // -- counters (request conservation checks) --------------------------------
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed_ok() const { return completed_ok_; }
  std::uint64_t failed() const { return failed_; }      // balancer errors
  std::uint64_t dropped() const { return dropped_; }    // retries exhausted
  std::uint64_t in_flight() const {
    return issued_ - completed_ok_ - failed_ - dropped_;
  }
  std::uint64_t connection_drops() const { return connection_drops_; }
  /// Client-side re-attempts after a retriable admission 503.
  std::uint64_t shed_retries() const { return shed_retries_; }
  bool in_burst() const { return in_burst_; }

 private:
  void issue(std::uint16_t client);
  void attempt(std::uint16_t client, const proto::RequestPtr& req,
               std::size_t tries);
  void connect_dropped(std::uint16_t client, const proto::RequestPtr& req,
                       std::size_t tries);
  void finish(std::uint16_t client, const proto::RequestPtr& req,
              metrics::RequestOutcome outcome);
  void think_then_next(std::uint16_t client);
  void toggle_burst();

  sim::Simulation& sim_;
  ClientParams params_;
  const RubbosWorkload& workload_;
  std::vector<proto::FrontEnd*> frontends_;
  metrics::RequestLog& log_;
  net::Link link_;
  sim::Rng rng_;

  std::vector<std::int16_t> routes_;  // per-client sticky route
  std::vector<std::int16_t> prev_;    // per-client last interaction (Markov)
  IssueHook issue_hook_;
  obs::TraceCollector* trace_events_ = nullptr;
  bool in_burst_ = false;
  bool quiesced_ = false;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t connection_drops_ = 0;
  std::uint64_t shed_retries_ = 0;
};

}  // namespace ntier::workload
