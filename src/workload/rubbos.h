#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/request.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ntier::workload {

/// One of the 24 RUBBoS web interactions (bulletin-board operations modelled
/// after Slashdot). Demand means are calibrated so the simulated testbed
/// matches the paper's operating point: ≈3 ms baseline response time,
/// ≈10 k interactions/s at 70 000 clients, every server below ~45 % CPU.
struct InteractionType {
  std::string name;
  double weight_browse = 0;   // relative frequency, browse-only mix
  double weight_rw = 0;       // relative frequency, read/write mix
  double apache_demand_ms = 0.45;   // front-end CPU per request
  double tomcat_demand_ms = 0.55;   // servlet CPU per request
  int db_queries = 1;               // MySQL round trips
  double mysql_miss_demand_ms = 0.5;  // per query on a query-cache miss
  std::uint32_t request_bytes = 500;
  std::uint32_t response_bytes = 8000;
  std::uint32_t log_bytes = 1200;   // access+servlet+localhost log volume
  /// Brownout priority class: 0 = high (writes, logins, moderation — work a
  /// user would lose), 1 = normal (views, browsing), 2 = low (searches and
  /// archive pages — easy to retry, shed first under overload).
  std::uint8_t priority = 1;
  /// How many of the interaction's DB round trips commit data (the last
  /// db_writes trips — reads gather, the write commits). The KV tier routes
  /// them through the write quorum; MySQL treats every trip the same.
  std::uint8_t db_writes = 0;
};

enum class Mix { kBrowseOnly, kReadWrite };

std::string to_string(Mix m);

/// How requests get their brownout priority class.
enum class PriorityMix {
  kUniform,  // everything normal priority (the seed behaviour)
  kRubbos,   // per-interaction classes from the table above
};

std::string to_string(PriorityMix p);

/// Workload-level tunables.
struct WorkloadParams {
  Mix mix = Mix::kReadWrite;
  /// Lognormal coefficient of variation applied to every CPU demand.
  double demand_cv = 0.3;
  /// MySQL query-cache hit probability and hit-side demand.
  double query_cache_hit = 0.85;
  double mysql_hit_demand_ms = 0.02;
  /// Global demand scaling (ablation knob).
  double demand_scale = 1.0;
  /// Session realism: draw each interaction from the previous one's
  /// successor set with probability `p_follow` (RUBBoS's Markov transition
  /// structure) instead of i.i.d. mix draws. Off by default so the
  /// stationary mix exactly matches the weights.
  bool markov_sessions = false;
  double p_follow = 0.7;
  /// Brownout priority stamping (consumed by the overload-control layer;
  /// harmless when no limiter is active).
  PriorityMix priority_mix = PriorityMix::kUniform;
  /// Data-key popularity for the sharded KV tier: each request touches one
  /// key drawn Zipf(zipf_s) from [0, key_space). Zero keys disables the
  /// draw entirely (MySQL mode — keeps the RNG stream identical to before
  /// the KV tier existed). Rank 0 is the hottest key.
  std::uint64_t key_space = 0;
  double zipf_s = 0.8;
};

/// Generator of RUBBoS interactions: owns the 24-entry interaction table and
/// draws fully-specified requests (all demands pre-sampled, so a request is
/// self-contained and the run replayable).
class RubbosWorkload {
 public:
  explicit RubbosWorkload(WorkloadParams params = {});

  const std::vector<InteractionType>& interactions() const { return table_; }
  const WorkloadParams& params() const { return params_; }

  /// Number of interaction types (24 for RUBBoS).
  std::size_t num_interactions() const { return table_.size(); }

  /// Draw the next interaction for a client session and materialise it as a
  /// request with sampled demands. `prev_interaction` (-1 = none) drives the
  /// Markov session model when enabled.
  proto::RequestPtr make_request(sim::Rng& rng, std::uint64_t id,
                                 std::uint32_t client,
                                 int prev_interaction = -1) const;

  /// The Markov step by itself: the next interaction index after `prev`
  /// (-1, or the session model disabled, falls back to a mix draw).
  std::size_t next_interaction(sim::Rng& rng, int prev) const;

  /// Materialise a request of a *given* interaction type (trace replay):
  /// demands are sampled, the type is forced.
  proto::RequestPtr materialize(sim::Rng& rng, std::uint64_t id,
                                std::uint32_t client,
                                std::size_t interaction) const;

  /// Successor set of an interaction under the session model (indices into
  /// interactions()); empty for terminal interactions.
  const std::vector<std::size_t>& successors(std::size_t interaction) const {
    return successors_[interaction];
  }

  /// Mean demands of the active mix (used by capacity-planning tests).
  double mean_tomcat_demand_ms() const;
  double mean_apache_demand_ms() const;
  double mean_log_bytes() const;

 private:
  const std::vector<double>& active_weights() const {
    return params_.mix == Mix::kBrowseOnly ? weights_browse_ : weights_rw_;
  }

  WorkloadParams params_;
  std::vector<InteractionType> table_;
  std::vector<double> weights_browse_;
  std::vector<double> weights_rw_;
  std::vector<std::vector<std::size_t>> successors_;
  /// Zipf CDF over key ranks (empty when key_space == 0); a key draw is one
  /// uniform + binary search, not the O(n) scan of Rng::zipf.
  std::vector<double> zipf_cdf_;
};

}  // namespace ntier::workload
