#include "workload/trace_gen.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ntier::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Shortest round-trip double formatting (ostream's 6 significant digits
/// would corrupt a spec through to_string -> parse).
std::string fmt(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

}  // namespace

bool TraceGenSpec::validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error) *error = "trace-gen spec: " + why;
    return false;
  };
  auto finite = [](double v) { return std::isfinite(v); };
  if (!finite(duration_s) || duration_s <= 0)
    return fail("duration must be finite and > 0");
  if (!finite(base_rps) || base_rps <= 0)
    return fail("base-rps must be finite and > 0");
  if (!finite(diurnal_amplitude) || diurnal_amplitude < 0 ||
      diurnal_amplitude >= 1)
    return fail("diurnal-amplitude must be in [0, 1)");
  if (!finite(diurnal_period_s) || diurnal_period_s < 0)
    return fail("diurnal-period must be >= 0 (0 = one cycle over duration)");
  if (!finite(flash_at_s)) return fail("flash-at must be finite");
  if (flash_at_s >= 0) {
    if (!finite(flash_duration_s) || flash_duration_s <= 0)
      return fail("flash-duration must be finite and > 0");
    if (!finite(flash_multiplier) || flash_multiplier < 1)
      return fail("flash-multiplier must be >= 1");
  }
  if (!finite(session_mean) || session_mean < 1)
    return fail("session-mean must be >= 1");
  if (!finite(think_mean_s) || think_mean_s < 0)
    return fail("think-mean must be >= 0");
  if (!finite(abandon_p) || abandon_p < 0 || abandon_p >= 1)
    return fail("abandon-p must be in [0, 1)");
  return true;
}

std::string TraceGenSpec::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << ",duration=" << fmt(duration_s) << ",base-rps="
     << fmt(base_rps) << ",diurnal-amplitude=" << fmt(diurnal_amplitude)
     << ",diurnal-period=" << fmt(diurnal_period_s) << ",flash-at="
     << fmt(flash_at_s) << ",flash-duration=" << fmt(flash_duration_s)
     << ",flash-multiplier=" << fmt(flash_multiplier) << ",session-mean="
     << fmt(session_mean) << ",think-mean=" << fmt(think_mean_s)
     << ",abandon-p=" << fmt(abandon_p);
  return os.str();
}

std::optional<TraceGenSpec> trace_gen_spec_from_string(const std::string& s,
                                                       std::string* error) {
  TraceGenSpec spec;
  auto fail = [error](const std::string& why) {
    if (error) *error = "trace-gen spec: " + why;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return fail("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      std::uint64_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size())
        return fail("bad integer for 'seed': '" + value + "'");
      spec.seed = parsed;
      continue;
    }
    double parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size())
      return fail("bad number for '" + key + "': '" + value + "'");
    if (key == "duration") spec.duration_s = parsed;
    else if (key == "base-rps") spec.base_rps = parsed;
    else if (key == "diurnal-amplitude") spec.diurnal_amplitude = parsed;
    else if (key == "diurnal-period") spec.diurnal_period_s = parsed;
    else if (key == "flash-at") spec.flash_at_s = parsed;
    else if (key == "flash-duration") spec.flash_duration_s = parsed;
    else if (key == "flash-multiplier") spec.flash_multiplier = parsed;
    else if (key == "session-mean") spec.session_mean = parsed;
    else if (key == "think-mean") spec.think_mean_s = parsed;
    else if (key == "abandon-p") spec.abandon_p = parsed;
    else return fail("unknown key '" + key + "'");
  }
  std::string why;
  if (!spec.validate(&why)) {
    if (error) *error = why;
    return std::nullopt;
  }
  return spec;
}

double TraceGenerator::rate_at(double t_s) const {
  const double period =
      spec_.diurnal_period_s > 0 ? spec_.diurnal_period_s : spec_.duration_s;
  double r = spec_.base_rps;
  if (spec_.diurnal_amplitude > 0)
    r *= 1.0 + spec_.diurnal_amplitude *
                   std::sin(2.0 * kPi * t_s / period - kPi / 2.0);
  if (spec_.flash_at_s >= 0 && t_s >= spec_.flash_at_s &&
      t_s < spec_.flash_at_s + spec_.flash_duration_s)
    r *= spec_.flash_multiplier;
  return r;
}

ArrivalTrace TraceGenerator::generate(const RubbosWorkload& workload) const {
  std::string why;
  if (!spec_.validate(&why)) throw std::invalid_argument(why);

  ArrivalTrace trace;
  sim::Rng rng(spec_.seed);

  // Session starts are an NHPP, sampled by thinning a homogeneous process
  // at the global peak rate (diurnal peak x flash multiplier). A session of
  // session_mean interactions contributes session_mean arrivals, so the
  // session start rate is rate(t) / session_mean.
  const double flash_mult =
      spec_.flash_at_s >= 0 ? spec_.flash_multiplier : 1.0;
  const double lambda_max = spec_.base_rps *
                            (1.0 + spec_.diurnal_amplitude) * flash_mult /
                            spec_.session_mean;
  const double continue_p =
      spec_.session_mean <= 1.0 ? 0.0 : 1.0 - 1.0 / spec_.session_mean;

  std::uint32_t next_client = 0;
  double t = 0;
  while (true) {
    t += rng.exponential(1.0 / lambda_max);
    if (t >= spec_.duration_s) break;
    if (!rng.bernoulli(rate_at(t) / (lambda_max * spec_.session_mean)))
      continue;

    // One user session: its own forked stream, so the per-session walk is
    // independent of how many other sessions the thinning loop rejected.
    sim::Rng session_rng = rng.fork();
    const std::uint32_t client = next_client++;
    double st = t;
    int prev = -1;
    while (true) {
      const std::size_t k = workload.next_interaction(session_rng, prev);
      const auto req = workload.materialize(session_rng, 0, client, k);
      trace.add_rich(sim::SimTime::from_seconds(st), client,
                     static_cast<std::uint16_t>(k), req->key, req->priority);
      prev = static_cast<int>(k);
      if (!session_rng.bernoulli(continue_p)) break;
      if (spec_.abandon_p > 0 && session_rng.bernoulli(spec_.abandon_p))
        break;
      if (spec_.think_mean_s > 0)
        st += session_rng.exponential(spec_.think_mean_s);
      if (st >= spec_.duration_s) break;
    }
  }

  // Sessions overlap, so their interleaved arrivals need a final ordering
  // pass (stable: same-instant arrivals keep generation order).
  trace.sort();
  return trace;
}

}  // namespace ntier::workload
