#include "workload/trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ntier::workload {

void ArrivalTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.at < b.at;
                   });
}

void ArrivalTrace::save(std::ostream& os) const {
  os << "at_s,client,interaction\n";
  for (const auto& e : events_)
    os << e.at.to_seconds() << ',' << e.client << ',' << e.interaction << '\n';
}

ArrivalTrace ArrivalTrace::load(std::istream& is) {
  ArrivalTrace trace;
  std::string line;
  if (!std::getline(is, line) || line.rfind("at_s,", 0) != 0)
    throw std::invalid_argument("ArrivalTrace::load: missing header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string at_s, client_s, interaction_s;
    if (!std::getline(row, at_s, ',') || !std::getline(row, client_s, ',') ||
        !std::getline(row, interaction_s))
      throw std::invalid_argument("ArrivalTrace::load: bad row: " + line);
    trace.add(sim::SimTime::from_seconds(std::stod(at_s)),
              static_cast<std::uint16_t>(std::stoul(client_s)),
              static_cast<std::uint16_t>(std::stoul(interaction_s)));
  }
  return trace;
}

void ArrivalTrace::scale_time(double factor) {
  if (factor <= 0)
    throw std::invalid_argument("ArrivalTrace::scale_time: factor must be > 0");
  for (auto& e : events_)
    e.at = sim::SimTime::from_seconds(e.at.to_seconds() * factor);
}

TraceReplayer::TraceReplayer(sim::Simulation& simu, const ArrivalTrace& trace,
                             const RubbosWorkload& workload,
                             std::vector<proto::FrontEnd*> frontends,
                             metrics::RequestLog& log,
                             net::RetransmitSchedule retransmit,
                             sim::SimTime link_latency)
    : sim_(simu),
      trace_(trace),
      workload_(workload),
      frontends_(std::move(frontends)),
      log_(log),
      retransmit_(std::move(retransmit)),
      link_(link_latency),
      rng_(simu.rng().fork()) {
  if (frontends_.empty())
    throw std::invalid_argument("TraceReplayer: no front-ends");
}

void TraceReplayer::start() {
  for (const auto& ev : trace_.events()) {
    if (ev.at < sim_.now())
      throw std::logic_error("TraceReplayer: trace event in the past");
    sim_.at(ev.at, [this, ev] { issue(ev); });
  }
}

void TraceReplayer::issue(const ArrivalEvent& ev) {
  auto req = workload_.materialize(rng_, next_id_++, ev.client, ev.interaction);
  req->client_start = sim_.now();
  req->apache_id = static_cast<std::int16_t>(ev.client % frontends_.size());
  ++issued_;
  attempt(req, 0);
}

void TraceReplayer::attempt(const proto::RequestPtr& req, std::size_t tries) {
  link_.deliver(sim_, [this, req, tries] {
    auto* fe = frontends_[static_cast<std::size_t>(req->apache_id)];
    const bool accepted =
        fe->try_submit(req, [this](const proto::RequestPtr& r, bool ok) {
          link_.deliver(sim_, [this, r, ok] {
            finish(r, ok ? metrics::RequestOutcome::kOk
                         : metrics::RequestOutcome::kBalancerError);
          });
        });
    if (!accepted) {
      ++connection_drops_;
      if (tries < retransmit_.max_retries()) {
        req->retransmissions =
            static_cast<std::uint8_t>(req->retransmissions + 1);
        sim_.after(retransmit_.delay(tries),
                   [this, req, tries] { attempt(req, tries + 1); });
      } else {
        finish(req, metrics::RequestOutcome::kDropped);
      }
    }
  });
}

void TraceReplayer::finish(const proto::RequestPtr& req,
                           metrics::RequestOutcome outcome) {
  switch (outcome) {
    case metrics::RequestOutcome::kOk: ++completed_ok_; break;
    case metrics::RequestOutcome::kDropped: ++dropped_; break;
    case metrics::RequestOutcome::kBalancerError: ++failed_; break;
    case metrics::RequestOutcome::kInFlight: break;
  }
  metrics::RequestRecord rec;
  rec.id = req->id;
  rec.interaction = req->interaction;
  rec.apache = req->apache_id;
  rec.tomcat = req->tomcat_id;
  rec.retransmissions = req->retransmissions;
  rec.outcome = outcome;
  rec.start = req->client_start;
  rec.end = sim_.now();
  rec.accepted_at = req->accepted_at;
  rec.assigned_at = req->assigned_at;
  rec.backend_done_at = req->backend_done_at;
  log_.on_complete(rec);
}

}  // namespace ntier::workload
