#include "workload/trace.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ntier::workload {

namespace {

constexpr std::string_view kHeaderLean = "at_ns,client,interaction";
constexpr std::string_view kHeaderRich = "at_ns,client,interaction,key,priority";
constexpr std::string_view kHeaderLegacy = "at_s,client,interaction";

[[noreturn]] void parse_fail(const std::string& origin, std::size_t row,
                             std::size_t col, const std::string& why) {
  throw std::invalid_argument("ArrivalTrace: " + origin + ":" +
                              std::to_string(row) + ":" + std::to_string(col) +
                              ": " + why);
}

/// Strict integer field: from_chars must consume every byte.
template <typename T>
T parse_uint(std::string_view field, const std::string& origin,
             std::size_t row, std::size_t col, const char* what,
             std::uint64_t max) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc() || ptr != field.end())
    parse_fail(origin, row, col,
               std::string("bad ") + what + " '" + std::string(field) + "'");
  if (v > max)
    parse_fail(origin, row, col,
               std::string(what) + " " + std::to_string(v) + " exceeds " +
                   std::to_string(max));
  return static_cast<T>(v);
}

std::int64_t parse_at_ns(std::string_view field, const std::string& origin,
                         std::size_t row) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc() || ptr != field.end())
    parse_fail(origin, row, 1,
               "bad at_ns '" + std::string(field) + "' (integer nanoseconds)");
  if (v < 0) parse_fail(origin, row, 1, "negative arrival time");
  return v;
}

/// Legacy v1 times: fractional seconds, parsed strictly (std::stod's
/// trailing-garbage tolerance is what this replaces).
sim::SimTime parse_at_s(std::string_view field, const std::string& origin,
                        std::size_t row) {
  double v = 0;
  const auto [ptr, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc() || ptr != field.end() || !std::isfinite(v))
    parse_fail(origin, row, 1,
               "bad at_s '" + std::string(field) + "' (finite seconds)");
  if (v < 0) parse_fail(origin, row, 1, "negative arrival time");
  return sim::SimTime::from_seconds(v);
}

/// Split one CSV row into exactly `want` comma-separated fields.
std::size_t split_row(std::string_view line, std::string_view* out,
                      std::size_t want) {
  std::size_t n = 0;
  while (true) {
    const std::size_t comma = line.find(',');
    if (n < want) out[n] = line.substr(0, comma);
    ++n;
    if (comma == std::string_view::npos) break;
    line.remove_prefix(comma + 1);
  }
  return n;
}

}  // namespace

bool ArrivalTrace::sorted() const {
  for (std::size_t i = 1; i < events_.size(); ++i)
    if (events_[i].at < events_[i - 1].at) return false;
  return true;
}

void ArrivalTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) {
                     return a.at < b.at;
                   });
}

void ArrivalTrace::save(std::ostream& os) const {
  // Times go out as the simulator's own integer nanoseconds: the default
  // ostream double formatting (6 significant digits) used to shave arrival
  // times to ms past t=1000s, breaking save->load->save byte-identity.
  os << (rich_ ? kHeaderRich : kHeaderLean) << '\n';
  for (const auto& e : events_) {
    os << e.at.ns() << ',' << e.client << ',' << e.interaction;
    if (rich_)
      os << ',' << e.key << ',' << static_cast<unsigned>(e.priority);
    os << '\n';
  }
}

ArrivalTrace ArrivalTrace::parse(std::string_view text,
                                 const std::string& origin) {
  ArrivalTrace trace;
  std::size_t row = 0;
  auto next_line = [&text, &row]() {
    ++row;
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    return line;
  };

  if (text.empty())
    throw std::invalid_argument("ArrivalTrace: " + origin +
                                ": empty input (missing header)");
  const std::string_view header = next_line();
  bool legacy = false;
  bool rich = false;
  if (header == kHeaderRich) {
    rich = true;
  } else if (header == kHeaderLean) {
  } else if (header == kHeaderLegacy) {
    legacy = true;
  } else {
    throw std::invalid_argument(
        "ArrivalTrace: " + origin + ":1:1: unknown header '" +
        std::string(header) + "' (expected '" + std::string(kHeaderRich) +
        "', '" + std::string(kHeaderLean) + "' or legacy '" +
        std::string(kHeaderLegacy) + "')");
  }
  const std::size_t want = rich ? 5 : 3;

  while (!text.empty()) {
    const std::string_view line = next_line();
    if (line.empty()) continue;
    std::string_view f[5];
    const std::size_t got = split_row(line, f, want);
    if (got != want)
      parse_fail(origin, row, got < want ? got + 1 : want + 1,
                 "expected " + std::to_string(want) + " fields, got " +
                     std::to_string(got));
    const sim::SimTime at =
        legacy ? parse_at_s(f[0], origin, row)
               : sim::SimTime::nanos(parse_at_ns(f[0], origin, row));
    const auto client = parse_uint<std::uint32_t>(f[1], origin, row, 2,
                                                  "client id", UINT32_MAX);
    const auto interaction = parse_uint<std::uint16_t>(
        f[2], origin, row, 3, "interaction id", UINT16_MAX);
    if (rich) {
      const auto key =
          parse_uint<std::uint64_t>(f[3], origin, row, 4, "key", UINT64_MAX);
      // Brownout classes are 0 (high) .. 2 (low); anything else is a
      // corrupted row, not a new class.
      const auto priority =
          parse_uint<std::uint8_t>(f[4], origin, row, 5, "priority", 2);
      trace.add_rich(at, client, interaction, key, priority);
    } else {
      trace.add(at, client, interaction);
    }
  }
  return trace;
}

ArrivalTrace ArrivalTrace::load(std::istream& is) {
  std::string text(std::istreambuf_iterator<char>(is), {});
  return parse(text, "<stream>");
}

void ArrivalTrace::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("ArrivalTrace: cannot write " + path);
  save(f);
  f.flush();
  if (!f) throw std::runtime_error("ArrivalTrace: write failed: " + path);
}

ArrivalTrace ArrivalTrace::load_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("ArrivalTrace: cannot open " + path + ": " +
                             std::strerror(errno));
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat st {};
  if (::fstat(fd, &st) != 0)
    throw std::runtime_error("ArrivalTrace: cannot stat " + path + ": " +
                             std::strerror(errno));
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) return parse({}, path);  // throws "empty input" with origin

  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mem == MAP_FAILED) {
    // Not a mappable file (pipe, some pseudo-filesystems): stream it.
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("ArrivalTrace: cannot read " + path);
    std::string text(std::istreambuf_iterator<char>(f), {});
    return parse(text, path);
  }
  struct Unmap {
    void* mem;
    std::size_t size;
    ~Unmap() { ::munmap(mem, size); }
  } unmap{mem, size};
  return parse(std::string_view(static_cast<const char*>(mem), size), path);
}

void ArrivalTrace::scale_time(double factor) {
  if (!(factor > 0) || !std::isfinite(factor))
    throw std::invalid_argument(
        "ArrivalTrace::scale_time: factor must be finite and > 0");
  for (auto& e : events_)
    e.at = sim::SimTime::nanos(static_cast<std::int64_t>(
        static_cast<double>(e.at.ns()) * factor + 0.5));
}

TraceReplayer::TraceReplayer(sim::Simulation& simu, const ArrivalTrace& trace,
                             const RubbosWorkload& workload,
                             std::vector<proto::FrontEnd*> frontends,
                             metrics::RequestLog& log, ReplayParams params)
    : sim_(simu),
      trace_(trace),
      workload_(workload),
      frontends_(std::move(frontends)),
      log_(log),
      params_(std::move(params)),
      link_(params_.link_latency),
      rng_(simu.rng().fork()) {
  if (frontends_.empty())
    throw std::invalid_argument("TraceReplayer: no front-ends");
  if (!trace_.sorted())
    throw std::invalid_argument(
        "TraceReplayer: trace is not sorted by arrival time (call "
        "ArrivalTrace::sort() first)");
}

void TraceReplayer::start() {
  if (started_) throw std::logic_error("TraceReplayer::start called twice");
  started_ = true;
  if (trace_.empty()) return;
  if (trace_.events().front().at < sim_.now())
    throw std::logic_error("TraceReplayer: trace event in the past");
  schedule_next();
}

void TraceReplayer::schedule_next() {
  if (next_ >= trace_.size()) return;
  const ArrivalEvent& ev = trace_.events()[next_];
  sim_.at(ev.at, [this, &ev] {
    ++next_;
    schedule_next();  // keep exactly one pending arrival in the queue
    issue(ev);
  });
}

void TraceReplayer::issue(const ArrivalEvent& ev) {
  auto req = workload_.materialize(rng_, next_id_++, ev.client, ev.interaction);
  if (trace_.rich()) {
    // Replay the recorded data key and brownout class instead of this run's
    // fresh draws: the KV/cache tiers and the admission limiter see exactly
    // the recorded day.
    req->key = ev.key;
    req->priority = ev.priority;
  }
  req->client_start = sim_.now();
  if (params_.deadline_budget != sim::SimTime::zero())
    req->deadline = req->client_start + params_.deadline_budget;
  req->apache_id = static_cast<std::int16_t>(ev.client % frontends_.size());
  ++issued_;

  auto flight = std::make_shared<Flight>();
  if (params_.client_timeout != sim::SimTime::zero()) {
    flight->timer = sim_.after(params_.client_timeout, [this, req, flight] {
      if (flight->settled) return;
      flight->settled = true;
      ++abandoned_;
      // The client hung up: account the wait it actually endured as a drop.
      // A response that arrives later is ignored.
      record(req, metrics::RequestOutcome::kDropped);
    });
  }
  attempt(req, flight, 0);
}

void TraceReplayer::attempt(const proto::RequestPtr& req,
                            const FlightPtr& flight, std::size_t tries) {
  link_.deliver(sim_, [this, req, flight, tries] {
    auto* fe = frontends_[static_cast<std::size_t>(req->apache_id)];
    const bool accepted = fe->try_submit(
        req, [this, flight](const proto::RequestPtr& r, bool ok) {
          link_.deliver(sim_, [this, r, flight, ok] {
            finish(r, flight,
                   ok ? metrics::RequestOutcome::kOk
                      : metrics::RequestOutcome::kBalancerError);
          });
        });
    if (!accepted) {
      ++connection_drops_;
      if (tries < params_.retransmit.max_retries()) {
        req->retransmissions =
            static_cast<std::uint8_t>(req->retransmissions + 1);
        sim_.after(params_.retransmit.delay(tries),
                   [this, req, flight, tries] {
                     if (flight->settled) return;  // abandoned while backing off
                     attempt(req, flight, tries + 1);
                   });
      } else {
        finish(req, flight, metrics::RequestOutcome::kDropped);
      }
    }
  });
}

void TraceReplayer::finish(const proto::RequestPtr& req,
                           const FlightPtr& flight,
                           metrics::RequestOutcome outcome) {
  if (flight->settled) return;  // the abandonment timer won the race
  flight->settled = true;
  if (flight->timer != sim::kInvalidEventId) sim_.cancel(flight->timer);
  switch (outcome) {
    case metrics::RequestOutcome::kOk: ++completed_ok_; break;
    case metrics::RequestOutcome::kDropped: ++dropped_; break;
    case metrics::RequestOutcome::kBalancerError: ++failed_; break;
    case metrics::RequestOutcome::kInFlight: break;
  }
  record(req, outcome);
}

void TraceReplayer::record(const proto::RequestPtr& req,
                           metrics::RequestOutcome outcome) {
  if (req->client_start < params_.warmup) return;
  metrics::RequestRecord rec;
  rec.id = req->id;
  rec.interaction = req->interaction;
  rec.apache = req->apache_id;
  rec.tomcat = req->tomcat_id;
  rec.retransmissions = req->retransmissions;
  rec.outcome = outcome;
  rec.start = req->client_start;
  rec.end = sim_.now();
  rec.accepted_at = req->accepted_at;
  rec.assigned_at = req->assigned_at;
  rec.backend_done_at = req->backend_done_at;
  rec.deadline = req->deadline;
  rec.priority = req->priority;
  rec.shed = req->shed;
  rec.kv_wait_ms = req->kv_quorum_wait.to_millis();
  rec.kv_degraded_ms = req->kv_degraded_wait.to_millis();
  log_.on_complete(rec);
}

}  // namespace ntier::workload
