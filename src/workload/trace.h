#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/request_log.h"
#include "net/link.h"
#include "net/retransmit.h"
#include "proto/frontend.h"
#include "sim/simulation.h"
#include "workload/rubbos.h"

namespace ntier::workload {

/// One arrival of a request trace: who asked for what, when — and, in a
/// *rich* trace, which data key it touched and its brownout priority class,
/// so a replay drives the KV/cache tiers and the overload layer exactly as
/// recorded. `client` is 32-bit: a day of production traffic has far more
/// distinct users than a closed-loop population has slots.
struct ArrivalEvent {
  sim::SimTime at;
  std::uint32_t client = 0;
  std::uint16_t interaction = 0;
  std::uint64_t key = 0;
  std::uint8_t priority = 1;
};

/// A recorded (or generated) arrival trace: the open-loop counterpart of
/// the closed-loop client population. Stand-in for the production traces
/// the paper's methodology would consume; CSV round-trips byte-identically
/// so traces can be shipped, diffed and replayed.
///
/// Two schemas share one loader:
///   v2 lean:  "at_ns,client,interaction"              (add())
///   v2 rich:  "at_ns,client,interaction,key,priority" (add_rich())
/// plus the legacy v1 header "at_s,client,interaction" (load only; its
/// fractional seconds column is what broke byte-determinism). Times are
/// integer nanoseconds on disk — exactly the simulator's representation.
class ArrivalTrace {
 public:
  void add(sim::SimTime at, std::uint32_t client, std::uint16_t interaction) {
    events_.push_back(ArrivalEvent{at, client, interaction, 0, 1});
  }

  /// Record a full arrival: data key + brownout priority ride along and the
  /// trace switches to the rich on-disk schema.
  void add_rich(sim::SimTime at, std::uint32_t client,
                std::uint16_t interaction, std::uint64_t key,
                std::uint8_t priority) {
    events_.push_back(ArrivalEvent{at, client, interaction, key, priority});
    rich_ = true;
  }

  const std::vector<ArrivalEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// True when the trace carries keys/priorities (rich schema). Replays of
  /// lean traces leave the workload generator's own draws in place.
  bool rich() const { return rich_; }

  /// True when arrivals are in non-decreasing time order (the replayer's
  /// precondition).
  bool sorted() const;

  /// Restore arrival-time order (recording is already ordered; edits and
  /// merges may not be). Stable: same-instant arrivals keep their order.
  void sort();

  /// CSV with exact integer-nanosecond times (see class comment for the
  /// schema). save -> load -> save is byte-identical.
  void save(std::ostream& os) const;
  static ArrivalTrace load(std::istream& is);

  /// Parse CSV text directly. `origin` labels error messages
  /// ("file:row:col: ...").
  static ArrivalTrace parse(std::string_view text,
                            const std::string& origin = "<trace>");

  /// File round-trip. load_file memory-maps the file and parses it with
  /// std::from_chars — no stream or locale machinery on the hot path.
  void save_file(const std::string& path) const;
  static ArrivalTrace load_file(const std::string& path);

  /// Uniformly time-scale the trace (factor 0.5 replays at 2x the recorded
  /// rate). Rejects non-positive and non-finite factors.
  void scale_time(double factor);

 private:
  std::vector<ArrivalEvent> events_;
  bool rich_ = false;
};

/// Replayer tunables (the open-loop analogue of ClientParams).
struct ReplayParams {
  net::RetransmitSchedule retransmit;
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Client-side patience: a request unanswered this long is abandoned and
  /// logged as dropped (a late response is ignored). Zero = wait forever.
  sim::SimTime client_timeout;
  /// Completions before this instant are not recorded (warm-up).
  sim::SimTime warmup;
  /// Overload control: response-time budget stamped as an absolute deadline
  /// on every request (zero = no deadlines).
  sim::SimTime deadline_budget;
};

/// Open-loop replayer: issues the trace's requests against the front-ends
/// at their recorded instants, with the same SYN-retransmission behaviour
/// as the closed-loop clients. Unlike the closed loop, arrivals do not slow
/// down when the system does — the standard trace-replay caveat, useful
/// precisely because it preserves burst shapes.
///
/// Arrivals are streamed: each firing schedules only the next one, so the
/// event queue holds O(1) replayer events regardless of trace length (the
/// seed implementation dumped the whole trace into the queue up front).
class TraceReplayer {
 public:
  TraceReplayer(sim::Simulation& simu, const ArrivalTrace& trace,
                const RubbosWorkload& workload,
                std::vector<proto::FrontEnd*> frontends,
                metrics::RequestLog& log, ReplayParams params = {});

  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  /// Schedule the first arrival. Call once before running the simulation.
  void start();

  // -- counters (request conservation checks) --------------------------------
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed_ok() const { return completed_ok_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t connection_drops() const { return connection_drops_; }
  /// Requests the client gave up on (client_timeout elapsed, no response).
  std::uint64_t abandoned() const { return abandoned_; }
  std::uint64_t in_flight() const {
    return issued_ - completed_ok_ - failed_ - dropped_ - abandoned_;
  }

 private:
  /// Per-request settlement state: first of {response, retransmit
  /// exhaustion, abandonment timer} wins; the others become no-ops.
  struct Flight {
    bool settled = false;
    sim::EventId timer = sim::kInvalidEventId;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  void schedule_next();
  void issue(const ArrivalEvent& ev);
  void attempt(const proto::RequestPtr& req, const FlightPtr& flight,
               std::size_t tries);
  void finish(const proto::RequestPtr& req, const FlightPtr& flight,
              metrics::RequestOutcome outcome);
  void record(const proto::RequestPtr& req, metrics::RequestOutcome outcome);

  sim::Simulation& sim_;
  const ArrivalTrace& trace_;
  const RubbosWorkload& workload_;
  std::vector<proto::FrontEnd*> frontends_;
  metrics::RequestLog& log_;
  ReplayParams params_;
  net::Link link_;
  sim::Rng rng_;

  std::size_t next_ = 0;  // next trace index to issue
  bool started_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t connection_drops_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace ntier::workload
