#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "metrics/request_log.h"
#include "net/link.h"
#include "net/retransmit.h"
#include "proto/frontend.h"
#include "sim/simulation.h"
#include "workload/rubbos.h"

namespace ntier::workload {

/// One arrival of a request trace: who asked for what, when.
struct ArrivalEvent {
  sim::SimTime at;
  std::uint16_t client = 0;
  std::uint16_t interaction = 0;
};

/// A recorded (or hand-built) arrival trace: the open-loop counterpart of
/// the closed-loop client population. Stand-in for the production traces
/// the paper's methodology would consume; CSV round-trips so traces can be
/// shipped, edited and replayed.
class ArrivalTrace {
 public:
  void add(sim::SimTime at, std::uint16_t client, std::uint16_t interaction) {
    events_.push_back(ArrivalEvent{at, client, interaction});
  }

  const std::vector<ArrivalEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Restore arrival-time order (recording is already ordered; edits and
  /// merges may not be).
  void sort();

  /// CSV: at_s,client,interaction — one row per arrival.
  void save(std::ostream& os) const;
  static ArrivalTrace load(std::istream& is);

  /// Uniformly time-scale the trace (replay at 2x the recorded rate, etc.).
  void scale_time(double factor);

 private:
  std::vector<ArrivalEvent> events_;
};

/// Open-loop replayer: issues the trace's requests against the front-ends
/// at their recorded instants, with the same SYN-retransmission behaviour
/// as the closed-loop clients. Unlike the closed loop, arrivals do not slow
/// down when the system does — the standard trace-replay caveat, useful
/// precisely because it preserves burst shapes.
class TraceReplayer {
 public:
  TraceReplayer(sim::Simulation& simu, const ArrivalTrace& trace,
                const RubbosWorkload& workload,
                std::vector<proto::FrontEnd*> frontends,
                metrics::RequestLog& log,
                net::RetransmitSchedule retransmit = {},
                sim::SimTime link_latency = sim::SimTime::micros(100));

  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  /// Schedule every arrival. Call once before running the simulation.
  void start();

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed_ok() const { return completed_ok_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t connection_drops() const { return connection_drops_; }

 private:
  void issue(const ArrivalEvent& ev);
  void attempt(const proto::RequestPtr& req, std::size_t tries);
  void finish(const proto::RequestPtr& req, metrics::RequestOutcome outcome);

  sim::Simulation& sim_;
  const ArrivalTrace& trace_;
  const RubbosWorkload& workload_;
  std::vector<proto::FrontEnd*> frontends_;
  metrics::RequestLog& log_;
  net::RetransmitSchedule retransmit_;
  net::Link link_;
  sim::Rng rng_;

  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t connection_drops_ = 0;
};

}  // namespace ntier::workload
