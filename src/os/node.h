#pragma once

#include <memory>
#include <string>

#include "os/cpu.h"
#include "os/disk.h"
#include "os/page_cache.h"
#include "os/pdflush.h"
#include "sim/simulation.h"

namespace ntier::os {

/// Hardware/OS parameters of one physical node (paper Table II: Xeon E5530
/// quad-core, SATA 7200 rpm disk).
struct NodeConfig {
  std::string name = "node";
  int cores = 4;
  /// Effective writeback bandwidth of the data disk (scattered log blocks
  /// on a 7200-rpm SATA spindle, well below the sequential maximum).
  double disk_bytes_per_second = 40.0 * (1 << 20);  // 40 MB/s
  PdflushConfig pdflush;
  /// Foreground dirty throttle (Linux dirty_ratio expressed in bytes;
  /// 0 = disabled). Writers crossing it are parked until the next flush —
  /// the *other* way writeback stalls foreground work.
  std::uint64_t dirty_throttle_bytes = 0;
};

/// One machine: CPU + disk + page cache + writeback daemon. Tier servers
/// run *on* a Node and consume its CPU; their log writes dirty its page
/// cache, which is what ultimately produces the millibottlenecks.
class Node {
 public:
  Node(sim::Simulation& simu, NodeConfig config)
      : config_(std::move(config)),
        cpu_(simu, config_.cores, config_.name + "/cpu"),
        disk_(simu, config_.disk_bytes_per_second, config_.name + "/disk"),
        page_cache_(simu),
        pdflush_(simu, page_cache_, disk_, cpu_, config_.pdflush) {
    page_cache_.set_throttle_limit(config_.dirty_throttle_bytes);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return config_.name; }
  const NodeConfig& config() const { return config_; }

  CpuResource& cpu() { return cpu_; }
  Disk& disk() { return disk_; }
  PageCache& page_cache() { return page_cache_; }
  PdflushDaemon& pdflush() { return pdflush_; }
  const PdflushDaemon& pdflush() const { return pdflush_; }

 private:
  NodeConfig config_;
  CpuResource cpu_;
  Disk disk_;
  PageCache page_cache_;
  PdflushDaemon pdflush_;
};

}  // namespace ntier::os
