#include "os/cpu.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ntier::os {

namespace {
// Virtual-time comparison tolerance (ns of service). Scheduled completion
// delays are rounded *up* to integer ns, so V slightly overshoots v_end;
// accumulated double error stays far below this at any realistic run length.
constexpr double kVEps = 0.5;
}  // namespace

CpuResource::CpuResource(sim::Simulation& simu, int cores, std::string name)
    : sim_(simu), cores_(cores), name_(std::move(name)) {
  if (cores <= 0) throw std::invalid_argument("CpuResource: cores must be positive");
  last_update_ = sim_.now();
  probe_last_t_ = sim_.now();
}

double CpuResource::rate_per_job() const {
  if (live_jobs_ == 0) return 0.0;
  const double share =
      live_jobs_ <= static_cast<std::size_t>(cores_)
          ? 1.0
          : static_cast<double>(cores_) / static_cast<double>(live_jobs_);
  return factor_ * share;
}

void CpuResource::advance() {
  const sim::SimTime now = sim_.now();
  const double dt = static_cast<double>((now - last_update_).ns());
  if (dt <= 0) {
    last_update_ = now;
    return;
  }
  const double rate = rate_per_job();
  v_ += dt * rate;
  work_done_ns_ += dt * rate * static_cast<double>(live_jobs_);
  stall_ns_ += dt * (1.0 - factor_);
  last_update_ = now;
}

void CpuResource::pop_cancelled_top() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

void CpuResource::reschedule() {
  if (completion_event_ != sim::kInvalidEventId) {
    sim_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEventId;
  }
  pop_cancelled_top();
  if (heap_.empty()) return;
  const double rate = rate_per_job();
  if (rate <= 0.0) return;  // fully stalled; re-armed when the factor recovers
  const double remaining = heap_.top().v_end - v_;
  const double delay_ns = remaining <= 0 ? 0 : std::ceil(remaining / rate);
  completion_event_ = sim_.after(sim::SimTime::nanos(static_cast<std::int64_t>(delay_ns)),
                                 [this] { on_completion_event(); });
}

void CpuResource::on_completion_event() {
  completion_event_ = sim::kInvalidEventId;
  advance();
  std::vector<std::function<void()>> done;
  pop_cancelled_top();
  while (!heap_.empty() && heap_.top().v_end <= v_ + kVEps) {
    const JobId id = heap_.top().id;
    heap_.pop();
    auto it = callbacks_.find(id);
    assert(it != callbacks_.end());
    done.push_back(std::move(it->second));
    callbacks_.erase(it);
    --live_jobs_;
    pop_cancelled_top();
  }
  reschedule();
  for (auto& cb : done) cb();
}

CpuResource::JobId CpuResource::submit(sim::SimTime demand,
                                       std::function<void()> on_complete) {
  if (demand.ns() < 0) throw std::invalid_argument("CpuResource: negative demand");
  advance();
  const JobId id = next_job_id_++;
  heap_.push(HeapJob{v_ + static_cast<double>(demand.ns()), id});
  callbacks_.emplace(id, std::move(on_complete));
  ++live_jobs_;
  reschedule();
  return id;
}

bool CpuResource::cancel(JobId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  advance();
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_jobs_;
  reschedule();
  return true;
}

void CpuResource::set_capacity_factor(double f) {
  if (f < 0.0 || f > 1.0)
    throw std::invalid_argument("CpuResource: factor must be in [0,1]");
  advance();
  factor_ = f;
  reschedule();
}

double CpuResource::work_done_core_seconds() const { return work_done_ns_ * 1e-9; }
double CpuResource::stall_seconds() const { return stall_ns_ * 1e-9; }

CpuResource::UtilisationProbe CpuResource::probe_utilisation() {
  advance();
  const sim::SimTime now = sim_.now();
  const double dt = static_cast<double>((now - probe_last_t_).ns());
  UtilisationProbe p;
  if (dt > 0) {
    p.foreground = (work_done_ns_ - probe_last_work_ns_) /
                   (dt * static_cast<double>(cores_));
    p.stall = (stall_ns_ - probe_last_stall_ns_) / dt;
  }
  probe_last_work_ns_ = work_done_ns_;
  probe_last_stall_ns_ = stall_ns_;
  probe_last_t_ = now;
  return p;
}

}  // namespace ntier::os
