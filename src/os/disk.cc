#include "os/disk.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ntier::os {

Disk::Disk(sim::Simulation& simu, double bytes_per_second, std::string name)
    : sim_(simu), rate_(bytes_per_second), name_(std::move(name)) {
  if (bytes_per_second <= 0)
    throw std::invalid_argument("Disk: rate must be positive");
  probe_last_t_ = sim_.now();
}

void Disk::submit_write(std::uint64_t bytes, std::function<void()> on_complete) {
  queue_.push_back(Pending{bytes, std::move(on_complete)});
  if (!busy_) start_next();
}

void Disk::start_next() {
  if (queue_.empty()) return;
  busy_ = true;
  busy_since_ = sim_.now();
  const Pending& head = queue_.front();
  const double secs = static_cast<double>(head.bytes) / (rate_ * rate_factor_);
  sim_.after(sim::SimTime::from_seconds(secs), [this] {
    busy_ns_ += static_cast<double>((sim_.now() - busy_since_).ns());
    busy_ = false;
    auto done = std::move(queue_.front().on_complete);
    queue_.pop_front();
    start_next();
    if (done) done();
  });
}

void Disk::set_rate_factor(double factor) {
  if (factor <= 0 || factor > 1.0)
    throw std::invalid_argument("Disk: rate factor must be in (0, 1]");
  rate_factor_ = factor;
}

double Disk::busy_seconds() const {
  double ns = busy_ns_;
  if (busy_) ns += static_cast<double>((sim_.now() - busy_since_).ns());
  return ns * 1e-9;
}

double Disk::probe_busy_fraction() {
  const double total_ns = busy_seconds() * 1e9;
  const sim::SimTime now = sim_.now();
  const double dt = static_cast<double>((now - probe_last_t_).ns());
  double frac = 0;
  if (dt > 0) frac = (total_ns - probe_last_busy_ns_) / dt;
  probe_last_busy_ns_ = total_ns;
  probe_last_t_ = now;
  return frac < 0 ? 0 : (frac > 1 ? 1 : frac);
}

}  // namespace ntier::os
