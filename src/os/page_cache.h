#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "metrics/time_series.h"
#include "sim/simulation.h"

namespace ntier::os {

/// Dirty-page accounting for one node. Server processes append to their log
/// files through this; pdflush drains it. The dirty-byte gauge is the
/// paper's Fig. 2(e) ("sum of dirty pages"; abrupt drops = flushes).
class PageCache {
 public:
  explicit PageCache(sim::Simulation& simu,
                     sim::SimTime trace_window = sim::SimTime::millis(50))
      : sim_(simu), trace_(trace_window) {}

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Append `bytes` of dirty data (e.g. a log write).
  void write_dirty(std::uint64_t bytes);

  /// Append dirty data subject to the foreground throttle (Linux
  /// balance_dirty_pages / dirty_ratio): when the dirty total exceeds the
  /// throttle limit, the writing thread is parked and `proceed` runs only
  /// after writeback drains the cache. With no limit set this is exactly
  /// write_dirty + an immediate `proceed()`.
  void write_dirty_throttled(std::uint64_t bytes, std::function<void()> proceed);

  /// Foreground throttle limit in bytes (0 = disabled).
  void set_throttle_limit(std::uint64_t bytes) { throttle_limit_ = bytes; }
  bool over_throttle() const {
    return throttle_limit_ != 0 && dirty_ > throttle_limit_;
  }
  std::size_t throttled_writers() const { return throttled_.size(); }

  /// Claim every dirty byte for writeback; resets the gauge to zero and
  /// releases every throttled writer.
  std::uint64_t take_all_dirty();

  std::uint64_t dirty_bytes() const { return dirty_; }
  std::uint64_t total_written() const { return total_written_; }

  /// Invoked (at most once per crossing) when dirty bytes first exceed the
  /// registered threshold; pdflush uses this for the dirty_background path.
  void set_threshold(std::uint64_t bytes, std::function<void()> cb);

  /// Time series of the dirty-byte gauge (max + time-avg per window).
  const metrics::GaugeSeries& trace() const { return trace_; }
  void finish_trace() { trace_.finish(sim_.now()); }

 private:
  sim::Simulation& sim_;
  std::uint64_t dirty_ = 0;
  std::uint64_t total_written_ = 0;
  std::uint64_t threshold_ = 0;
  bool above_threshold_ = false;
  std::function<void()> threshold_cb_;
  std::uint64_t throttle_limit_ = 0;
  std::vector<std::function<void()>> throttled_;
  metrics::GaugeSeries trace_;
};

}  // namespace ntier::os
