#include "os/pdflush.h"

#include <algorithm>

namespace ntier::os {

PdflushDaemon::PdflushDaemon(sim::Simulation& simu, PageCache& cache,
                             Disk& disk, CpuResource& cpu, PdflushConfig config)
    : sim_(simu), cache_(cache), disk_(disk), cpu_(cpu), config_(config) {
  if (!config_.enabled) return;
  cache_.set_threshold(config_.dirty_background_bytes, [this] {
    if (!flushing_) begin_flush();
  });
  sim_.after(config_.initial_offset + config_.flush_interval,
             [this] { arm_timer(); });
}

void PdflushDaemon::arm_timer() {
  if (!flushing_) begin_flush();
  sim_.after(config_.flush_interval, [this] { arm_timer(); });
}

void PdflushDaemon::flush_now() {
  if (!flushing_) begin_flush();
}

void PdflushDaemon::begin_flush() {
  const std::uint64_t bytes = cache_.take_all_dirty();
  if (bytes == 0) return;
  flushing_ = true;
  episodes_.push_back(FlushEpisode{sim_.now(), sim::SimTime::max(), bytes});
  const std::size_t idx = episodes_.size() - 1;
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kPdflushStart,
                    trace_tier_, trace_node_, -1, 0,
                    static_cast<double>(bytes));
  // Starve the foreground while writeback is in flight: this is the
  // millibottleneck. (If another stall source already lowered the factor we
  // keep the lower of the two and restore on completion.)
  saved_factor_ = cpu_.capacity_factor();
  cpu_.set_capacity_factor(
      std::min(saved_factor_, 1.0 - config_.cpu_stall_severity));
  disk_.submit_write(bytes, [this, idx, bytes] {
    cpu_.set_capacity_factor(saved_factor_);
    flushing_ = false;
    episodes_[idx].end = sim_.now();
    NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kPdflushStop,
                      trace_tier_, trace_node_, -1, 0,
                      static_cast<double>(bytes));
    // More dirty bytes may have accumulated past the background threshold
    // while we were writing back; handle the crossing that we swallowed.
    if (cache_.dirty_bytes() > config_.dirty_background_bytes) begin_flush();
  });
}

}  // namespace ntier::os
