#include "os/page_cache.h"

#include <utility>

namespace ntier::os {

void PageCache::write_dirty(std::uint64_t bytes) {
  dirty_ += bytes;
  total_written_ += bytes;
  trace_.set(sim_.now(), static_cast<double>(dirty_));
  if (threshold_cb_ && !above_threshold_ && dirty_ > threshold_) {
    above_threshold_ = true;
    threshold_cb_();
  }
}

void PageCache::write_dirty_throttled(std::uint64_t bytes,
                                      std::function<void()> proceed) {
  write_dirty(bytes);
  if (over_throttle()) {
    throttled_.push_back(std::move(proceed));  // balance_dirty_pages parks us
  } else {
    proceed();
  }
}

std::uint64_t PageCache::take_all_dirty() {
  const std::uint64_t taken = dirty_;
  dirty_ = 0;
  above_threshold_ = false;
  trace_.set(sim_.now(), 0.0);
  if (!throttled_.empty()) {
    // Writeback claimed the dirty pages: every parked writer may proceed.
    std::vector<std::function<void()>> wake;
    wake.swap(throttled_);
    for (auto& w : wake) w();
  }
  return taken;
}

void PageCache::set_threshold(std::uint64_t bytes, std::function<void()> cb) {
  threshold_ = bytes;
  threshold_cb_ = std::move(cb);
  above_threshold_ = dirty_ > threshold_;
}

}  // namespace ntier::os
