#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "os/cpu.h"
#include "os/disk.h"
#include "os/page_cache.h"
#include "sim/simulation.h"

namespace ntier::os {

/// Tunables mirroring the Linux dirty-writeback knobs the paper manipulates.
struct PdflushConfig {
  /// Periodic wakeup (Linux dirty_writeback_centisecs; 5 s in the stock
  /// configuration the paper runs, 600 s when "eliminating" millibottlenecks).
  sim::SimTime flush_interval = sim::SimTime::seconds(5);
  /// Dirty bytes that trigger an immediate background flush
  /// (dirty_background_*). Paper's remedy raises this to 4.8 GB.
  std::uint64_t dirty_background_bytes = 64ull << 20;
  /// Fraction of foreground CPU capacity stolen while writeback is in
  /// flight. The paper measures ~100 % iowait during flushes (pdflush was
  /// "supposed to be asynchronous" but starves the foreground); 0.97 leaves
  /// a trickle of progress, matching the near-total transient saturation.
  double cpu_stall_severity = 0.97;
  /// Deterministic offset of the first periodic wakeup, so that the four
  /// Tomcats do not flush in lock-step (matches the paper, where one Tomcat
  /// at a time hits the millibottleneck).
  sim::SimTime initial_offset = sim::SimTime::zero();
  /// Disable entirely (nodes whose millibottlenecks were "eliminated").
  bool enabled = true;
};

/// The writeback daemon: on each wakeup (periodic or threshold-triggered)
/// it claims all dirty bytes, occupies the disk for bytes/rate, and starves
/// the foreground CPU for the duration — this is the millibottleneck
/// generator of the reproduction.
class PdflushDaemon {
 public:
  struct FlushEpisode {
    sim::SimTime start;
    sim::SimTime end;
    std::uint64_t bytes = 0;
  };

  PdflushDaemon(sim::Simulation& simu, PageCache& cache, Disk& disk,
                CpuResource& cpu, PdflushConfig config);

  PdflushDaemon(const PdflushDaemon&) = delete;
  PdflushDaemon& operator=(const PdflushDaemon&) = delete;

  bool flushing() const { return flushing_; }
  const std::vector<FlushEpisode>& episodes() const { return episodes_; }
  const PdflushConfig& config() const { return config_; }

  /// Force a flush now (used by tests and synthetic scenarios).
  void flush_now();

  /// Attach the cross-tier event collector (null disables). Flush episodes
  /// are emitted as pdflush_start/pdflush_stop with the given tier/node so
  /// the trace shows which server's OS stalled (value = dirty bytes).
  void set_trace(obs::TraceCollector* trace, obs::Tier tier, int node) {
    trace_events_ = trace;
    trace_tier_ = tier;
    trace_node_ = node;
  }

 private:
  void arm_timer();
  void begin_flush();

  sim::Simulation& sim_;
  PageCache& cache_;
  Disk& disk_;
  CpuResource& cpu_;
  PdflushConfig config_;
  bool flushing_ = false;
  double saved_factor_ = 1.0;
  obs::TraceCollector* trace_events_ = nullptr;
  obs::Tier trace_tier_ = obs::Tier::kTomcat;
  int trace_node_ = -1;
  std::vector<FlushEpisode> episodes_;
};

}  // namespace ntier::os
