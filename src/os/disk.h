#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::os {

/// FIFO byte server modelling a single spindle (the paper's testbed uses a
/// 7200-rpm SATA disk). Writeback from pdflush is its only client in the
/// reproduction scenarios, so its busy fraction doubles as the node's iowait
/// signal (Fig. 2(d)).
class Disk {
 public:
  Disk(sim::Simulation& simu, double bytes_per_second,
       std::string name = "disk");

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueue a write of `bytes`; `on_complete` fires when it has fully hit
  /// the platter (FIFO order).
  void submit_write(std::uint64_t bytes, std::function<void()> on_complete);

  bool busy() const { return busy_; }
  std::size_t queue_depth() const { return queue_.size(); }
  double bytes_per_second() const { return rate_ * rate_factor_; }
  double nominal_bytes_per_second() const { return rate_; }

  /// Scale the effective write bandwidth (fault injection: a degraded
  /// spindle, RAID rebuild, noisy neighbour). Applies from the next write;
  /// the in-flight write finishes at the rate it started with. 1.0 restores
  /// nominal throughput.
  void set_rate_factor(double factor);
  double rate_factor() const { return rate_factor_; }

  /// Cumulative busy time in seconds.
  double busy_seconds() const;

  /// Busy fraction since the previous probe call — the iowait series.
  double probe_busy_fraction();

 private:
  void start_next();

  sim::Simulation& sim_;
  double rate_;
  double rate_factor_ = 1.0;
  std::string name_;

  struct Pending {
    std::uint64_t bytes;
    std::function<void()> on_complete;
  };
  std::deque<Pending> queue_;
  bool busy_ = false;
  sim::SimTime busy_since_;
  double busy_ns_ = 0;

  double probe_last_busy_ns_ = 0;
  sim::SimTime probe_last_t_;
};

}  // namespace ntier::os
