#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::os {

/// Processor-sharing CPU with `cores` cores and a transient *capacity
/// factor* in [0, 1].
///
/// Each submitted job carries a service demand (CPU time at full speed on
/// one core). All runnable jobs progress at
///     rate = factor * min(1, cores / n_jobs)
/// per job — the classic egalitarian PS model, capped so a single job never
/// exceeds one core. A millibottleneck *is* a transient drop of the factor
/// towards 0 (e.g. pdflush saturating iowait and starving the foreground).
///
/// Implementation: virtual-time PS. V(t) integrates the per-job rate; job j
/// finishes when V reaches V(start_j) + demand_j, so arrivals/departures are
/// O(log n) instead of rescanning every job.
class CpuResource {
 public:
  using JobId = std::uint64_t;
  static constexpr JobId kInvalidJob = 0;

  CpuResource(sim::Simulation& simu, int cores, std::string name = "cpu");

  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  /// Submit a job with the given full-speed demand. `on_complete` fires when
  /// the job has accumulated that much service.
  JobId submit(sim::SimTime demand, std::function<void()> on_complete);

  /// Abandon a job before completion. Returns false if already finished.
  bool cancel(JobId id);

  /// Change the effective speed (0 = fully stalled). Takes effect
  /// immediately for all in-flight jobs.
  void set_capacity_factor(double f);
  double capacity_factor() const { return factor_; }

  int cores() const { return cores_; }
  std::size_t jobs_running() const { return live_jobs_; }
  const std::string& name() const { return name_; }

  /// Cumulative foreground work completed, in core-seconds.
  double work_done_core_seconds() const;
  /// Cumulative time integral of (1 - factor), in seconds — the "stolen"
  /// capacity, used to render iowait/CPU-saturation figures.
  double stall_seconds() const;

  /// Foreground utilisation over [since, now] as a fraction of total
  /// capacity; pair with stall to plot paper-style CPU graphs.
  struct UtilisationProbe {
    double foreground = 0;  // work done / (cores * dt)
    double stall = 0;       // mean (1 - factor) over dt
    double combined() const { return foreground + stall > 1.0 ? 1.0 : foreground + stall; }
  };
  /// Returns utilisation since the previous probe call (or since t=0).
  UtilisationProbe probe_utilisation();

 private:
  struct HeapJob {
    double v_end;  // virtual time at which the job completes
    JobId id;
    bool operator>(const HeapJob& o) const {
      if (v_end != o.v_end) return v_end > o.v_end;
      return id > o.id;
    }
  };

  double rate_per_job() const;
  void advance();      // integrate V up to sim_.now()
  void reschedule();   // re-arm the next-completion event
  void on_completion_event();
  void pop_cancelled_top();

  sim::Simulation& sim_;
  int cores_;
  std::string name_;
  double factor_ = 1.0;

  std::priority_queue<HeapJob, std::vector<HeapJob>, std::greater<>> heap_;
  std::unordered_set<JobId> cancelled_;
  std::unordered_map<JobId, std::function<void()>> callbacks_;
  std::size_t live_jobs_ = 0;

  double v_ = 0;                 // virtual time, in ns of per-job service
  sim::SimTime last_update_;
  double work_done_ns_ = 0;      // foreground core-ns completed
  double stall_ns_ = 0;          // integral of (1-factor) dt
  sim::EventId completion_event_ = sim::kInvalidEventId;
  JobId next_job_id_ = 1;

  // probe state
  double probe_last_work_ns_ = 0;
  double probe_last_stall_ns_ = 0;
  sim::SimTime probe_last_t_;
};

}  // namespace ntier::os
